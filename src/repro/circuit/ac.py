"""AC small-signal analysis: transfer functions, Bode data, poles.

Given a circuit and a DC operating point, the small-signal system is
``(G + j*omega*C) x = b_ac``.  :class:`ACAnalysis` solves it over a frequency
grid and extracts the quantities analog designers measure: low-frequency
gain, unity-gain frequency (GBW), phase margin, pole locations.

The solve is *stacked*: one batched ``np.linalg.solve`` over a
``(n_freq, dim, dim)`` tensor replaces the per-frequency Python loop, and
:class:`BatchACAnalysis` extends the same dispatch to per-sample stamped
systems — a ``(n_samples, n_freq, dim, dim)`` tensor solved in one (memory-
chunked) LAPACK call, which is what keeps netlist-backed Monte-Carlo
problems from being loop-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as _scipy_linalg

from repro.circuit.mna import DCSolution, MNAAssembler
from repro.circuit.netlist import Circuit

__all__ = [
    "ACAnalysis",
    "BatchACAnalysis",
    "TransferFunction",
    "default_frequency_grid",
]

#: Decade span and resolution of the default analysis grid.
_DEFAULT_GRID_ARGS = (0.0, 11.0, 661)

_DEFAULT_GRID: np.ndarray | None = None

#: Complex-entry budget of one stacked solve; batches beyond it are solved
#: in sample chunks so a large Monte-Carlo block cannot balloon memory
#: (2M entries = 32 MiB of complex128 for the system tensor alone).
_SOLVE_ENTRY_BUDGET = 2_000_000


def default_frequency_grid() -> np.ndarray:
    """The shared default grid: 1 Hz .. 100 GHz, 60 points/decade.

    Built once per process and returned as a read-only view — every
    ``transfer`` call used to allocate its own 661-point ``logspace``,
    which is pure waste on the Monte-Carlo hot path.  Pass an explicit
    ``frequencies`` array to analyse a different band.
    """
    global _DEFAULT_GRID
    if _DEFAULT_GRID is None:
        grid = np.logspace(*_DEFAULT_GRID_ARGS)
        grid.setflags(write=False)
        _DEFAULT_GRID = grid
    return _DEFAULT_GRID


def _as_frequency_grid(frequencies: np.ndarray | None) -> np.ndarray:
    if frequencies is None:
        return default_frequency_grid()
    return np.asarray(frequencies, dtype=float)


def _stacked_response(
    g: np.ndarray,
    c: np.ndarray,
    b: np.ndarray,
    frequencies: np.ndarray,
    out_idx: int | None,
    neg_idx: int | None,
) -> np.ndarray:
    """Solve ``(G + j w C) x = b`` over a frequency grid, batched.

    ``g``/``c`` may be a single ``(dim, dim)`` system or a stacked
    ``(n_samples, dim, dim)`` tensor; ``b`` is shared.  Returns the output
    node (or node-pair) response with shape ``(n_freq,)`` respectively
    ``(n_samples, n_freq)``.  The assembled tensor is solved in sample
    chunks bounded by :data:`_SOLVE_ENTRY_BUDGET`.
    """
    omega = 2.0 * np.pi * frequencies
    rhs = b.astype(complex)
    jw = 1j * omega[:, None, None]

    def solve_block(g_block: np.ndarray, c_block: np.ndarray) -> np.ndarray:
        # (..., F, dim, dim) systems against one shared RHS column.
        matrices = g_block[..., None, :, :] + jw * c_block[..., None, :, :]
        solution = np.linalg.solve(matrices, rhs[:, None])
        v = solution[..., out_idx, 0] if out_idx is not None else 0.0
        if neg_idx is not None:
            v = v - solution[..., neg_idx, 0]
        return v

    if g.ndim == 2:
        return solve_block(g, c)

    n_samples, dim = g.shape[0], g.shape[-1]
    per_sample = len(frequencies) * dim * dim
    chunk = max(1, _SOLVE_ENTRY_BUDGET // max(per_sample, 1))
    if n_samples <= chunk:
        return solve_block(g, c if c.ndim == 3 else np.broadcast_to(c, g.shape))
    c_stacked = c if c.ndim == 3 else np.broadcast_to(c, g.shape)
    out = np.empty((n_samples, len(frequencies)), dtype=complex)
    for start in range(0, n_samples, chunk):
        stop = min(start + chunk, n_samples)
        out[start:stop] = solve_block(g[start:stop], c_stacked[start:stop])
    return out


def _unity_gain_frequency(frequencies: np.ndarray, magnitude: np.ndarray) -> np.ndarray:
    """Vectorized unity-gain crossing by log-log interpolation.

    ``magnitude`` has shape ``(..., n_freq)``; returns ``(...)`` with
    ``nan`` where the magnitude never crosses unity inside the grid.
    """
    above = magnitude >= 1.0
    valid = above[..., 0] & ~above[..., -1]
    # First index at which |H| drops below unity (clipped so the k-1
    # neighbour always exists; invalid rows are masked out below).
    k = np.clip(np.argmax(~above, axis=-1), 1, magnitude.shape[-1] - 1)
    m1 = np.take_along_axis(magnitude, (k - 1)[..., None], axis=-1)[..., 0]
    m2 = np.take_along_axis(magnitude, k[..., None], axis=-1)[..., 0]
    f1, f2 = frequencies[k - 1], frequencies[k]
    with np.errstate(divide="ignore", invalid="ignore"):
        # log-linear interpolation of log|H| vs log f
        t = np.log(m1) / (np.log(m1) - np.log(m2))
        fu = np.exp(np.log(f1) + t * (np.log(f2) - np.log(f1)))
    return np.where(valid, fu, np.nan)


def _interp_rows(x: np.ndarray, xp: np.ndarray, fp: np.ndarray) -> np.ndarray:
    """Row-wise linear interpolation: ``fp`` is ``(..., n)``, ``x`` ``(...)``.

    Equivalent to ``np.interp(x[i], xp, fp[i])`` per row, with the same
    clamp-at-the-edges semantics, but vectorized over the leading axes.
    """
    x = np.clip(x, xp[0], xp[-1])
    idx = np.clip(np.searchsorted(xp, x), 1, len(xp) - 1)
    x1, x2 = xp[idx - 1], xp[idx]
    y1 = np.take_along_axis(fp, (idx - 1)[..., None], axis=-1)[..., 0]
    y2 = np.take_along_axis(fp, idx[..., None], axis=-1)[..., 0]
    return y1 + (x - x1) / (x2 - x1) * (y2 - y1)


@dataclass
class TransferFunction:
    """Sampled complex transfer function H(f) on a frequency grid.

    ``response`` is either a single curve of shape ``(n_freq,)`` or a
    batch of curves ``(n_samples, n_freq)`` sharing one grid (the shape
    :meth:`BatchACAnalysis.transfer_batch` returns).  Every metric is
    vectorized over the batch axis: scalar responses keep returning plain
    floats, batched responses return arrays of shape ``(n_samples,)``.
    """

    frequencies: np.ndarray
    response: np.ndarray

    @property
    def magnitude(self) -> np.ndarray:
        """|H(f)|."""
        return np.abs(self.response)

    @property
    def magnitude_db(self) -> np.ndarray:
        """20*log10 |H(f)|."""
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(np.maximum(self.magnitude, 1e-300))

    @property
    def phase_deg(self) -> np.ndarray:
        """Unwrapped phase in degrees (unwrapped along the frequency axis)."""
        return np.degrees(np.unwrap(np.angle(self.response), axis=-1))

    def _scalarize(self, values: np.ndarray):
        if self.response.ndim == 1:
            return float(values)
        return values

    def dc_gain(self):
        """Gain magnitude at the lowest analysed frequency."""
        return self._scalarize(self.magnitude[..., 0])

    def unity_gain_frequency(self):
        """Frequency where |H| crosses 1, by log-log interpolation [Hz].

        Returns ``nan`` (per curve) if the magnitude never crosses unity
        inside the grid.
        """
        return self._scalarize(_unity_gain_frequency(self.frequencies, self.magnitude))

    def phase_at(self, frequency):
        """Phase [deg] at ``frequency`` by log-frequency interpolation.

        ``frequency`` broadcasts against the batch axis (one query per
        curve).  Non-positive grid points or queries cannot be mapped to
        log-frequency and raise ``ValueError`` before any ``np.log``.
        """
        if float(self.frequencies[0]) <= 0.0:
            raise ValueError(
                "phase_at needs a strictly positive frequency grid for "
                f"log interpolation; grid starts at {self.frequencies[0]!r}"
            )
        frequency = np.asarray(frequency, dtype=float)
        if np.any(frequency <= 0.0):
            raise ValueError(
                f"frequency must be positive for log interpolation, got "
                f"{frequency!r}"
            )
        phase = self.phase_deg
        if self.response.ndim == 1 and frequency.ndim == 0:
            return float(
                np.interp(np.log(frequency), np.log(self.frequencies), phase)
            )
        query = np.broadcast_to(frequency, phase.shape[:-1])
        return _interp_rows(np.log(query), np.log(self.frequencies), phase)

    def phase_margin(self):
        """Phase margin [deg] = 180 + phase at the unity-gain frequency.

        ``nan`` when no unity-gain crossing exists in the analysed band.
        """
        fu = np.asarray(self.unity_gain_frequency())
        finite = np.isfinite(fu)
        if not np.any(finite):
            return self._scalarize(np.full(fu.shape, np.nan))
        # nan crossings query the grid start (a valid positive frequency)
        # and are masked back to nan afterwards.
        safe = np.where(finite, fu, self.frequencies[-1])
        pm = 180.0 + np.asarray(self.phase_at(safe))
        return self._scalarize(np.where(finite, pm, np.nan))


class ACAnalysis:
    """Small-signal analysis of a circuit at a DC operating point."""

    def __init__(self, circuit: Circuit, dc: DCSolution) -> None:
        self.circuit = circuit
        self.dc = dc
        assembler = MNAAssembler(circuit)
        self._g, self._c, self._b = assembler.ac_system(dc.op)
        self._nodemap = assembler.nodemap

    # -- frequency response ---------------------------------------------------
    def solve_at(self, frequency: float) -> np.ndarray:
        """Complex solution vector at one frequency [Hz]."""
        omega = 2.0 * np.pi * frequency
        matrix = self._g + 1j * omega * self._c
        return np.linalg.solve(matrix, self._b.astype(complex))

    def transfer(
        self,
        output: str,
        output_neg: str | None = None,
        frequencies: np.ndarray | None = None,
    ) -> TransferFunction:
        """Transfer function from the AC excitation to a node (or node pair).

        One stacked complex solve over the whole grid — no per-frequency
        Python loop.

        Parameters
        ----------
        output:
            Output node name (positive terminal).
        output_neg:
            Optional negative terminal for differential outputs.
        frequencies:
            Frequency grid [Hz]; defaults to the shared
            :func:`default_frequency_grid` (1 Hz .. 100 GHz, 60 pts/decade).
        """
        frequencies = _as_frequency_grid(frequencies)
        out_idx = self._nodemap[output]
        neg_idx = self._nodemap[output_neg] if output_neg is not None else None
        response = _stacked_response(
            self._g, self._c, self._b, frequencies, out_idx, neg_idx
        )
        if out_idx is None and neg_idx is None:
            response = np.zeros(len(frequencies), dtype=complex)
        return TransferFunction(frequencies, response)

    # -- poles -------------------------------------------------------------------
    def poles(self, max_hz: float = 1e14, min_hz: float = 1e-3) -> np.ndarray:
        """Natural frequencies of the network [Hz], sorted by magnitude.

        Solves the generalized eigenproblem ``(G + s C) x = 0`` on the full
        MNA system (including source branch rows, whose zero capacitance
        rows yield infinite eigenvalues that are discarded).  Numerically
        huge eigenvalues beyond ``max_hz`` and gmin-artifact eigenvalues
        below ``min_hz`` are filtered out.
        """
        eigenvalues = _scipy_linalg.eigvals(-self._g, self._c)
        s = eigenvalues[np.isfinite(eigenvalues)]
        f = s / (2.0 * np.pi)
        f = f[(np.abs(f) < max_hz) & (np.abs(f) > min_hz)]
        return f[np.argsort(np.abs(f))]


class BatchACAnalysis:
    """Stacked small-signal analysis: many stamped systems, one dispatch.

    Holds ``n_samples`` variants of one circuit topology — the same node
    map and excitation, per-sample ``G`` (and optionally ``C``) matrices —
    and solves all of them over a frequency grid as a single
    ``(n_samples, n_freq, dim, dim)`` batched LAPACK call.  This is the
    primitive netlist-backed Monte-Carlo evaluators build on: stamp the
    nominal system once, add per-sample deltas, and never loop in Python.

    Parameters
    ----------
    g:
        Conductance tensor, shape ``(n_samples, dim, dim)`` (a single
        ``(dim, dim)`` matrix is promoted to ``n_samples = 1``).
    c:
        Capacitance matrices: ``(dim, dim)`` shared across samples or a
        per-sample ``(n_samples, dim, dim)`` tensor.
    b:
        Shared AC excitation vector, shape ``(dim,)``.
    nodemap:
        The assembler's node map (resolves output node names).
    """

    def __init__(self, g: np.ndarray, c: np.ndarray, b: np.ndarray, nodemap) -> None:
        g = np.asarray(g, dtype=float)
        if g.ndim == 2:
            g = g[None, :, :]
        if g.ndim != 3 or g.shape[-1] != g.shape[-2]:
            raise ValueError(f"g must stack square matrices, got shape {g.shape}")
        c = np.asarray(c, dtype=float)
        if c.shape not in (g.shape, g.shape[1:]):
            raise ValueError(
                f"c must be {g.shape[1:]} (shared) or {g.shape} (per-sample), "
                f"got {c.shape}"
            )
        b = np.asarray(b, dtype=float)
        if b.shape != g.shape[1:2]:
            raise ValueError(f"b must have shape {g.shape[1:2]}, got {b.shape}")
        self._g = g
        self._c = c
        self._b = b
        self._nodemap = nodemap

    @classmethod
    def from_circuit(cls, circuit: Circuit, ops) -> "BatchACAnalysis":
        """Stamp one AC system per operating point of ``circuit``.

        ``ops`` is a sequence of per-MOSFET operating-point mappings (one
        per sample, as produced by DC solves); see
        :meth:`~repro.circuit.mna.MNAAssembler.ac_system_batch`.
        """
        assembler = MNAAssembler(circuit)
        g, c, b = assembler.ac_system_batch(ops)
        return cls(g, c, b, assembler.nodemap)

    @property
    def n_samples(self) -> int:
        """Number of stacked systems."""
        return self._g.shape[0]

    def solve_at(self, frequency: float) -> np.ndarray:
        """Complex solution vectors at one frequency, shape ``(n_samples, dim)``."""
        omega = 2.0 * np.pi * frequency
        matrices = self._g + 1j * omega * self._c
        return np.linalg.solve(matrices, self._b.astype(complex)[:, None])[..., 0]

    def transfer_batch(
        self,
        output: str,
        output_neg: str | None = None,
        frequencies: np.ndarray | None = None,
    ) -> TransferFunction:
        """All samples' transfer functions in one stacked solve.

        Returns a batched :class:`TransferFunction` with ``response`` of
        shape ``(n_samples, n_freq)`` whose metrics (``dc_gain``,
        ``unity_gain_frequency``, ``phase_margin`` ...) evaluate vectorized
        across the batch.
        """
        frequencies = _as_frequency_grid(frequencies)
        out_idx = self._nodemap[output]
        neg_idx = self._nodemap[output_neg] if output_neg is not None else None
        response = _stacked_response(
            self._g, self._c, self._b, frequencies, out_idx, neg_idx
        )
        if out_idx is None and neg_idx is None:
            response = np.zeros((self.n_samples, len(frequencies)), dtype=complex)
        return TransferFunction(frequencies, response)
