"""Netlist container.

A :class:`Circuit` is an ordered collection of elements plus convenience
constructors (``add_resistor``, ``add_mosfet`` ...).  It knows nothing about
analysis; the MNA assembler consumes it.
"""

from __future__ import annotations


from repro.circuit.elements import (
    VCCS,
    Capacitor,
    CurrentSource,
    Element,
    GROUND_NAMES,
    Mosfet,
    Resistor,
    VoltageSource,
)
from repro.circuit.mosfet import MosfetModelCard

__all__ = ["Circuit"]


class Circuit:
    """An analog circuit netlist.

    Element and node names are free-form strings; any of ``"0"``, ``"gnd"``,
    ``"GND"`` denotes ground.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.elements: list[Element] = []
        self._element_names: set[str] = set()

    # -- generic ------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add a pre-built element; names must be unique."""
        if element.name in self._element_names:
            raise ValueError(f"duplicate element name: {element.name!r}")
        self._element_names.add(element.name)
        self.elements.append(element)
        return element

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, name: str) -> Element:
        for element in self.elements:
            if element.name == name:
                return element
        raise KeyError(name)

    # -- convenience constructors ---------------------------------------------
    def add_resistor(self, name: str, n1: str, n2: str, resistance: float) -> Resistor:
        """Add a resistor [ohm]."""
        return self.add(Resistor(name, n1, n2, resistance))

    def add_capacitor(self, name: str, n1: str, n2: str, capacitance: float) -> Capacitor:
        """Add a capacitor [F]."""
        return self.add(Capacitor(name, n1, n2, capacitance))

    def add_current_source(
        self, name: str, n_from: str, n_to: str, dc: float, ac: float = 0.0
    ) -> CurrentSource:
        """Add a current source injecting ``dc`` amperes into ``n_to``."""
        return self.add(CurrentSource(name, n_from, n_to, dc, ac))

    def add_voltage_source(
        self, name: str, n_plus: str, n_minus: str, dc: float, ac: float = 0.0
    ) -> VoltageSource:
        """Add a voltage source [V]."""
        return self.add(VoltageSource(name, n_plus, n_minus, dc, ac))

    def add_vccs(
        self, name: str, out_p: str, out_n: str, in_p: str, in_n: str, gm: float
    ) -> VCCS:
        """Add a voltage-controlled current source [S]."""
        return self.add(VCCS(name, out_p, out_n, in_p, in_n, gm))

    def add_mosfet(
        self,
        name: str,
        d: str,
        g: str,
        s: str,
        b: str,
        card: MosfetModelCard,
        w: float,
        l: float,
    ) -> Mosfet:
        """Add a MOSFET instance (drain, gate, source, bulk) with W/L [m]."""
        return self.add(Mosfet(name, d, g, s, b, card, w, l))

    # -- topology queries --------------------------------------------------------
    def node_names(self) -> list[str]:
        """All node names in first-appearance order (including ground)."""
        seen: dict[str, None] = {}
        for element in self.elements:
            for node in element.nodes:
                seen.setdefault(node, None)
        return list(seen)

    def non_ground_nodes(self) -> list[str]:
        """Node names excluding ground aliases."""
        return [n for n in self.node_names() if n not in GROUND_NAMES]

    def mosfets(self) -> list[Mosfet]:
        """All MOSFET instances in the circuit."""
        return [e for e in self.elements if isinstance(e, Mosfet)]

    def voltage_sources(self) -> list[VoltageSource]:
        """All independent voltage sources."""
        return [e for e in self.elements if isinstance(e, VoltageSource)]

    def total_gate_area(self) -> float:
        """Sum of W*L over all MOSFETs [m^2] (area estimation)."""
        return float(sum(m.w * m.l for m in self.mosfets()))

    def describe(self) -> str:
        """Multi-line netlist listing for debugging."""
        lines = [f"* {self.name}: {len(self.elements)} elements, "
                 f"{len(self.non_ground_nodes())} nodes"]
        lines.extend(repr(element) for element in self.elements)
        return "\n".join(lines)
