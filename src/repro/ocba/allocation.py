"""Closed-form OCBA allocation (paper equation (1), Chen et al. 2000).

Given ``S`` designs with estimated means ``J_i`` and standard deviations
``sigma_i``, the asymptotically optimal allocation maximising the
probability of correctly selecting the best design satisfies::

    n_i / n_j = (sigma_i / delta_{b,i})^2 / (sigma_j / delta_{b,j})^2
                                        for i, j != b
    n_b       = sigma_b * sqrt( sum_{i != b} n_i^2 / sigma_i^2 )

where ``b`` is the observed-best design and ``delta_{b,i} = J_b - J_i``.

For yield optimization the "best" is the *highest* mean (yield), and the
means/stds come from Bernoulli pass counts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ocba_allocation", "clamp_gains", "rung_allocation"]

#: Floor on mean gaps so ties do not produce infinite ratios.
_DELTA_FLOOR = 1e-3
#: Floor on standard deviations (a 0 %/100 % estimate has zero sample std).
_SIGMA_FLOOR = 1e-3


def ocba_allocation(
    means: np.ndarray,
    stds: np.ndarray,
    total: int,
    minimum: int = 0,
) -> np.ndarray:
    """Integer allocation of ``total`` simulations across designs.

    Parameters
    ----------
    means:
        Current performance estimates (higher is better).
    stds:
        Per-sample standard deviations of each design's estimator.
    total:
        Total budget to distribute (the allocation sums to this).
    minimum:
        Optional per-design lower bound (e.g. ``n0``).

    Returns
    -------
    numpy.ndarray
        Integer allocations summing exactly to ``total``.

    Notes
    -----
    With a single design the whole budget goes to it.  Ties on the best
    mean are broken by index; gap and sigma floors keep ratios finite.
    """
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    s = means.shape[0]
    if s == 0:
        raise ValueError("need at least one design")
    if stds.shape != means.shape:
        raise ValueError(f"means {means.shape} and stds {stds.shape} must align")
    if total < minimum * s:
        raise ValueError(
            f"total budget {total} cannot satisfy minimum {minimum} x {s} designs"
        )
    if s == 1:
        return np.array([int(total)])

    sigma = np.maximum(stds, _SIGMA_FLOOR)
    b = int(np.argmax(means))
    delta = means[b] - means
    delta = np.maximum(delta, _DELTA_FLOOR)

    # Relative weights for i != b (equation (1) second line).
    weights = (sigma / delta) ** 2
    weights[b] = 0.0
    # n_b from the first line, expressed in the same relative units.
    nb = sigma[b] * np.sqrt(np.sum(weights**2 / sigma**2))
    weights[b] = nb

    raw = weights / np.sum(weights) * total
    raw = np.maximum(raw, float(minimum))
    # Renormalise after applying the floor, then round to integers that
    # sum exactly to ``total`` (largest-remainder method).
    raw = raw / np.sum(raw) * total
    alloc = np.floor(raw).astype(int)
    shortfall = int(total - np.sum(alloc))
    if shortfall > 0:
        order = np.argsort(-(raw - alloc))
        alloc[order[:shortfall]] += 1
    return alloc


def clamp_gains(gains: np.ndarray, total: int) -> np.ndarray:
    """Scale integer gains so their sum is exactly ``total``.

    Largest-remainder rounding keeps the result integral, deterministic
    (ties resolve by candidate order) and proportional to the original
    gains' intent.  Works both downward (an OCBA round overshooting its
    remaining budget) and upward (a rung budget exceeding the raw gains).
    """
    gains = np.asarray(gains)
    scaled = gains * (total / np.sum(gains))
    clamped = np.floor(scaled).astype(int)
    shortfall = int(total - np.sum(clamped))
    if shortfall > 0:
        order = np.argsort(-(scaled - clamped), kind="stable")
        clamped[order[:shortfall]] += 1
    return clamped


def rung_allocation(
    means: np.ndarray,
    stds: np.ndarray,
    counts: np.ndarray,
    total: int,
) -> np.ndarray:
    """OCBA-weighted *gains* raising a ladder rung to ``total`` samples.

    The multi-fidelity rung contract: the rung's members should hold
    ``total`` samples collectively (the rung fidelity times the member
    count), they already hold ``counts``, and the delta is distributed by
    the closed-form OCBA split — sequential OCBA's one-round analogue.
    Samples are never clawed back: members above their OCBA target simply
    gain nothing, and the leftover redistributes over the rest
    (:func:`clamp_gains`).  A rung whose members already meet ``total``
    returns all-zero gains.

    Returns integer gains aligned with ``counts`` summing exactly to
    ``max(total - sum(counts), 0)``.
    """
    counts = np.asarray(counts, dtype=int)
    remaining = int(total) - int(np.sum(counts))
    if remaining <= 0:
        return np.zeros(counts.shape[0], dtype=int)
    targets = ocba_allocation(means, stds, int(total), minimum=0)
    # The targets sum to ``total`` > sum(counts), so at least one member
    # sits below its target: the positive part is never all zero.
    gains = np.maximum(targets - counts, 0)
    return clamp_gains(gains, remaining)
