"""Ordinal-selection quality metrics.

Used by tests and the OCBA-vs-equal ablation bench to quantify the paper's
tenet that "order is easier than value": with the same total budget, OCBA
allocation yields a higher probability of correctly selecting the best
design (P{CS}) than equal allocation.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["approximate_pcs", "equal_allocation"]


def equal_allocation(n_designs: int, total: int) -> np.ndarray:
    """Split ``total`` as evenly as integers allow (the non-OCBA baseline)."""
    if n_designs <= 0:
        raise ValueError(f"need at least one design, got {n_designs}")
    base = total // n_designs
    alloc = np.full(n_designs, base, dtype=int)
    alloc[: total - base * n_designs] += 1
    return alloc


def approximate_pcs(
    means: np.ndarray, stds: np.ndarray, allocation: np.ndarray
) -> float:
    """Approximate probability of correct selection (APCS, Chen 2000).

    Bonferroni-style lower bound: with ``b`` the true best design::

        P{CS} >= 1 - sum_{i != b} P(Jhat_b < Jhat_i)
               = 1 - sum_{i != b} Phi(-delta_i / sqrt(s_b^2/n_b + s_i^2/n_i))

    Designs with zero allocation contribute a full miss probability (their
    estimate is uninformative).
    """
    means = np.asarray(means, dtype=float)
    stds = np.asarray(stds, dtype=float)
    allocation = np.asarray(allocation, dtype=float)
    if not (means.shape == stds.shape == allocation.shape):
        raise ValueError("means, stds and allocation must have equal shapes")

    b = int(np.argmax(means))
    miss = 0.0
    for i in range(means.shape[0]):
        if i == b:
            continue
        if allocation[i] <= 0 or allocation[b] <= 0:
            miss += 0.5
            continue
        gap = means[b] - means[i]
        scale = np.sqrt(
            stds[b] ** 2 / allocation[b] + stds[i] ** 2 / allocation[i]
        )
        if scale == 0.0:
            continue
        miss += float(_scipy_stats.norm.cdf(-gap / scale))
    return max(0.0, 1.0 - miss)
