"""Sequential OCBA over a population of candidate yield estimates.

The paper's stage-1 procedure: every feasible candidate starts with ``n0``
samples; the remaining budget ``T - S * n0`` is released in increments of
``Delta``, each increment allocated by the closed form using the freshest
mean/std estimates.  Candidates whose running estimate exceeds the stage-2
threshold are recorded so the caller can promote them.

``T`` follows the paper: ``sim_ave * N_fea`` — the average budget per
feasible candidate times the number of candidates selected by the
feasibility check.

The loop is *round-oriented*: each iteration computes every candidate's
gain, clamps the round to the remaining budget, and submits the whole
round to an :class:`~repro.engine.base.EvaluationEngine` as one fused
refinement — the engine decides whether that means a per-candidate loop
(legacy), one stacked vectorized dispatch (serial), or sharded worker
processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.base import EvaluationEngine, LegacyEngine
from repro.ocba.allocation import clamp_gains, ocba_allocation
from repro.yieldsim.estimator import CandidateYieldState

__all__ = ["OCBAReport", "ocba_sequential"]


@dataclass
class OCBAReport:
    """What the sequential loop did (consumed by Fig. 3 and tests)."""

    #: Final per-candidate sample counts (simulated + screened).
    counts: np.ndarray
    #: Final per-candidate yield estimates.
    estimates: np.ndarray
    #: Number of allocation rounds executed.
    rounds: int
    #: The budget the loop was asked to spend (None when not applicable).
    budget: int | None = None
    #: Total samples incorporated across candidates.
    total_samples: int = field(init=False)

    def __post_init__(self) -> None:
        self.total_samples = int(np.sum(self.counts))


def ocba_sequential(
    states: list[CandidateYieldState],
    total_budget: int,
    n0: int = 15,
    delta: int = 50,
    engine: EvaluationEngine | None = None,
) -> OCBAReport:
    """Distribute ``total_budget`` samples across candidate estimates.

    Parameters
    ----------
    states:
        Candidate yield states (refined in place).
    total_budget:
        Total sample budget T for this population (paper: sim_ave * N_fea).
    n0:
        Initial samples per candidate.
    delta:
        Budget increment per allocation round.
    engine:
        Execution backend for the fused refinement rounds; ``None`` uses
        the legacy per-candidate loop.

    Returns
    -------
    OCBAReport
        Final counts and estimates.

    Notes
    -----
    Counts are *samples incorporated in estimates*; with acceptance sampling
    the charged simulations can be fewer (the ledger tracks those).  If a
    candidate already has more samples than its allocation asks for (e.g. a
    surviving parent), it simply receives nothing new — budget is never
    clawed back, matching sequential OCBA practice.

    The total never exceeds ``total_budget``: a round whose gains overshoot
    the remaining budget is clamped proportionally (the pilot phase is the
    one exception — every candidate is owed ``n0`` regardless, and
    pre-refined states keep what they have).
    """
    if not states:
        return OCBAReport(
            counts=np.zeros(0, dtype=int),
            estimates=np.zeros(0),
            rounds=0,
            budget=int(total_budget) if total_budget >= 0 else None,
        )
    if total_budget < 0:
        raise ValueError(f"total budget must be non-negative, got {total_budget}")
    engine = engine if engine is not None else LegacyEngine()
    problem = states[0].problem

    def counts() -> np.ndarray:
        return np.array([state.n for state in states], dtype=int)

    # Phase 0: everyone gets the pilot n0, as one fused round.
    engine.refine_round(problem, states, np.maximum(n0 - counts(), 0))
    pilot_spent = int(np.sum(counts()))

    rounds = 0
    spent = pilot_spent
    while spent < total_budget:
        budget_now = min(spent + delta, total_budget)
        means = np.array([state.value for state in states])
        stds = np.array([state.std for state in states])
        targets = ocba_allocation(means, stds, budget_now, minimum=0)
        gains = np.maximum(targets - counts(), 0)
        if np.sum(gains) == 0:
            # The allocation wants to rebalance below current counts
            # everywhere; push the increment onto the observed best so the
            # loop always progresses.
            best = int(np.argmax(means))
            gains[best] = budget_now - spent
        # Candidates sitting above their target contribute no negative
        # gain, so the positive gains can sum past the remaining budget;
        # clamp the fused round so the loop never overspends.
        remaining = total_budget - spent
        if np.sum(gains) > remaining:
            gains = clamp_gains(gains, remaining)
        engine.refine_round(problem, states, gains)
        spent = int(np.sum(counts()))
        rounds += 1

    report = OCBAReport(
        counts=counts(),
        estimates=np.array([state.value for state in states]),
        rounds=rounds,
        budget=int(total_budget),
    )
    if pilot_spent <= total_budget:
        assert report.total_samples <= total_budget, (
            f"OCBA overspent its budget: {report.total_samples} samples "
            f"against T = {total_budget}"
        )
    return report
