"""Sequential OCBA over a population of candidate yield estimates.

The paper's stage-1 procedure: every feasible candidate starts with ``n0``
samples; the remaining budget ``T - S * n0`` is released in increments of
``Delta``, each increment allocated by the closed form using the freshest
mean/std estimates.  Candidates whose running estimate exceeds the stage-2
threshold are recorded so the caller can promote them.

``T`` follows the paper: ``sim_ave * N_fea`` — the average budget per
feasible candidate times the number of candidates selected by the
feasibility check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ocba.allocation import ocba_allocation
from repro.yieldsim.estimator import CandidateYieldState

__all__ = ["OCBAReport", "ocba_sequential"]


@dataclass
class OCBAReport:
    """What the sequential loop did (consumed by Fig. 3 and tests)."""

    #: Final per-candidate sample counts (simulated + screened).
    counts: np.ndarray
    #: Final per-candidate yield estimates.
    estimates: np.ndarray
    #: Number of allocation rounds executed.
    rounds: int
    #: Total samples incorporated across candidates.
    total_samples: int = field(init=False)

    def __post_init__(self) -> None:
        self.total_samples = int(np.sum(self.counts))


def ocba_sequential(
    states: list[CandidateYieldState],
    total_budget: int,
    n0: int = 15,
    delta: int = 50,
) -> OCBAReport:
    """Distribute ``total_budget`` samples across candidate estimates.

    Parameters
    ----------
    states:
        Candidate yield states (refined in place).
    total_budget:
        Total sample budget T for this population (paper: sim_ave * N_fea).
    n0:
        Initial samples per candidate.
    delta:
        Budget increment per allocation round.

    Returns
    -------
    OCBAReport
        Final counts and estimates.

    Notes
    -----
    Counts are *samples incorporated in estimates*; with acceptance sampling
    the charged simulations can be fewer (the ledger tracks those).  If a
    candidate already has more samples than its allocation asks for (e.g. a
    surviving parent), it simply receives nothing new — budget is never
    clawed back, matching sequential OCBA practice.
    """
    if not states:
        return OCBAReport(counts=np.zeros(0, dtype=int), estimates=np.zeros(0), rounds=0)
    if total_budget < 0:
        raise ValueError(f"total budget must be non-negative, got {total_budget}")

    # Phase 0: everyone gets the pilot n0.
    for state in states:
        state.refine_to(n0)

    def counts() -> np.ndarray:
        return np.array([state.n for state in states], dtype=int)

    rounds = 0
    spent = int(np.sum(counts()))
    while spent < total_budget:
        budget_now = min(spent + delta, total_budget)
        means = np.array([state.value for state in states])
        stds = np.array([state.std for state in states])
        targets = ocba_allocation(means, stds, budget_now, minimum=0)
        gains = np.maximum(targets - counts(), 0)
        if np.sum(gains) == 0:
            # The allocation wants to rebalance below current counts
            # everywhere; push the increment onto the observed best so the
            # loop always progresses.
            best = int(np.argmax(means))
            gains[best] = budget_now - spent
        for state, gain in zip(states, gains):
            if gain > 0:
                state.refine(int(gain))
        spent = int(np.sum(counts()))
        rounds += 1

    return OCBAReport(
        counts=counts(),
        estimates=np.array([state.value for state in states]),
        rounds=rounds,
    )
