"""Ordinal optimization / optimal computing budget allocation (OCBA).

Implements the allocation rule the paper adopts from Chen et al. (2000)
(equation (1) in the paper) and the sequential procedure that applies it to
the yield estimation of one population of candidate designs:

* :func:`ocba_allocation` — the closed-form asymptotically-optimal split of
  a total budget across designs given current mean/std estimates.
* :func:`ocba_sequential` — the n0 / Delta / T incremental loop over
  :class:`~repro.yieldsim.estimator.CandidateYieldState` objects.
* :func:`rung_allocation` / :func:`clamp_gains` — the one-round variant a
  multi-fidelity ladder rung uses to spend its budget OCBA-weighted
  (:mod:`repro.mf`), and the largest-remainder integer scaler both loops
  share.
* :mod:`repro.ocba.ranking` — probability-of-correct-selection metrics used
  to quantify how much better OCBA ranks candidates than equal allocation.
"""

from repro.ocba.allocation import clamp_gains, ocba_allocation, rung_allocation
from repro.ocba.sequential import OCBAReport, ocba_sequential
from repro.ocba.ranking import approximate_pcs, equal_allocation

__all__ = [
    "ocba_allocation",
    "ocba_sequential",
    "rung_allocation",
    "clamp_gains",
    "OCBAReport",
    "approximate_pcs",
    "equal_allocation",
]
