"""Job queue and worker pool of the optimization service.

A :class:`JobManager` owns everything between "a spec arrived over the
wire" and "a result is ready to fetch":

* **Validation at the door** — submitted payloads go through
  ``RunSpec``/``SweepSpec.from_dict`` plus the registry-resolving
  validators, so a broken spec fails the submission call with a structured
  :class:`~repro.api.errors.SpecError` instead of poisoning a queued job.
* **A FIFO queue + worker threads** — run jobs execute through
  :func:`repro.api.optimize`, sweep jobs through
  :func:`repro.sweep.run_sweep` (which may itself shard across a process
  pool); the worker count bounds how many jobs simulate concurrently.
* **Event streams** — every job carries an append-only event log
  (state transitions, per-generation progress, per-run sweep completions)
  guarded by a condition variable; :meth:`JobManager.follow_events` blocks
  until new events arrive and drains exactly once, which is what the HTTP
  layer turns into an NDJSON stream.
* **Cooperative cancellation** — a cancelled job's ``threading.Event`` is
  polled by the MOHECO loop's ``on_generation_end`` hook (run jobs) or by
  the sweep executor's ``cancel`` flag (sweep jobs); the run winds down
  after its current generation.
* **A shared warm cache** — jobs that do not bring their own cache get the
  manager's LRU cache with one spill file shared across *all* jobs, so
  concurrent tenants hammering the same problem warm-start each other.
  The cache is ledger-faithful, so results stay bit-identical
  (``MOHECOResult.identity_dict()``) to a direct ``optimize()`` call with
  the same spec and seed.
* **A simulator-worker registry** — ``repro worker`` daemons register
  themselves (health-checked at the door) via ``POST /v1/workers``; jobs
  submitted with ``engine="remote"`` and no explicit ``workers`` engine
  parameter get the registered fleet injected, the same way the shared
  cache is injected — submitters never need to know the fleet topology.
* **Persistence** — events append to ``job-<id>.events.ndjson``, run
  results land in ``job-<id>.json``, and sweep jobs write their records
  through the resumable JSONL :class:`~repro.sweep.store.ResultStore`
  (``job-<id>.store.jsonl``).
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue
import tempfile
import threading
import time
import traceback
import uuid

from repro.api.errors import validate_run_spec, validate_sweep_spec
from repro.api.spec import RunSpec
from repro.core.callbacks import Callback
from repro.sweep.spec import SweepSpec

__all__ = [
    "Job",
    "JobManager",
    "UnknownJobError",
    "UnreachableWorkerError",
    "TERMINAL_STATES",
]

#: States a job can rest in forever.
TERMINAL_STATES = frozenset({"succeeded", "failed", "cancelled"})

#: Generation-record fields small enough to stream per event (the arrays —
#: OCBA counts, evaluated designs — stay in the persisted result payload).
_GENERATION_EVENT_FIELDS = (
    "generation",
    "best_yield",
    "best_violation",
    "feasible_count",
    "stage2_count",
    "simulations_total",
    "local_search_fired",
)


class UnknownJobError(KeyError):
    """No job with the requested id."""


class UnreachableWorkerError(RuntimeError):
    """A worker registration whose health check did not answer ok."""

    def __init__(self, url: str) -> None:
        self.url = url
        super().__init__(f"worker at {url} failed its health check")


class Job:
    """One submitted unit of work and its observable lifecycle."""

    def __init__(self, job_id: str, kind: str, spec: dict) -> None:
        self.id = job_id
        #: ``"run"`` or ``"sweep"``.
        self.kind = kind
        #: The spec payload exactly as submitted (the injected shared
        #: cache is execution detail, not identity — see JobManager).
        self.spec = spec
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.events: list[dict] = []
        self.result: dict | None = None
        self.error: dict | None = None
        self.cancel_event = threading.Event()
        self.cond = threading.Condition()
        #: Path of the job's sweep ResultStore (sweep jobs only).
        self.store_path: str | None = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def emit(self, kind: str, **payload) -> dict:
        """Append one event and wake every follower."""
        with self.cond:
            event = {
                "seq": len(self.events),
                "ts": time.time(),
                "kind": kind,
                **payload,
            }
            self.events.append(event)
            self.cond.notify_all()
        return event

    def transition(self, state: str, **payload) -> dict:
        """Move to ``state`` and emit the matching ``state`` event."""
        with self.cond:
            self.state = state
            if state == "running":
                self.started = time.time()
            if state in TERMINAL_STATES:
                self.finished = time.time()
        return self.emit("state", state=state, **payload)

    def status_dict(self) -> dict:
        """The ``GET /v1/jobs/{id}`` body."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "events": len(self.events),
            "spec": self.spec,
            "error": self.error,
        }


class _RunJobBridge(Callback):
    """Streams a run job's generations as events; polls its cancel flag."""

    def __init__(self, job: Job, on_event=None) -> None:
        self.job = job
        self.on_event = on_event

    def _emit(self, kind: str, **payload) -> None:
        event = self.job.emit(kind, **payload)
        if self.on_event is not None:
            self.on_event(event)

    def on_generation_end(self, engine, record) -> bool:
        data = record.to_dict()
        self._emit(
            "generation", **{key: data[key] for key in _GENERATION_EVENT_FIELDS}
        )
        return self.job.cancel_event.is_set()

    def on_local_search(self, engine, generation, incumbent, improved) -> None:
        self._emit(
            "local_search", generation=int(generation), improved=improved is not None
        )


class _SweepJobBridge(Callback):
    """Streams a sweep job's per-run and per-generation progress as events."""

    def __init__(self, job: Job, on_event=None) -> None:
        self.job = job
        self.on_event = on_event

    def _emit(self, kind: str, **payload) -> None:
        event = self.job.emit(kind, **payload)
        if self.on_event is not None:
            self.on_event(event)

    def on_sweep_start(self, sweep, total: int, pending: int) -> None:
        self._emit("sweep_start", total=total, pending=pending)

    def on_sweep_run_progress(self, sweep, run, record: dict) -> None:
        self._emit(
            "generation",
            run=run.key,
            **{key: record[key] for key in _GENERATION_EVENT_FIELDS},
        )

    def on_sweep_run_end(self, sweep, run, record, done: int, total: int) -> None:
        self._emit(
            "sweep_run",
            run=run.key,
            done=done,
            total=total,
            reported_yield=record.reported_yield,
            reference_yield=record.reference_yield,
            n_simulations=record.n_simulations,
        )


class JobManager:
    """Queue, execute and observe optimization jobs (see module docstring).

    Parameters
    ----------
    workers:
        Worker threads draining the job queue — the number of jobs that
        *simulate* concurrently.  Queued beyond that, jobs wait in FIFO
        order.
    data_dir:
        Directory for per-job persistence (events NDJSON, result JSON,
        sweep ResultStores) and the shared cache spill file.  ``None``
        creates a private temporary directory that :meth:`close` removes.
    shared_cache:
        Attach the manager's shared warm cache (an LRU spill file under
        ``data_dir``) to every job that does not configure its own cache.
        Ledger-faithful, so it never changes results — only wall-clock —
        and concurrent tenants on the same problem warm-start each other.
    cache_max_bytes:
        Byte budget of each job's in-memory LRU view of the shared cache.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        data_dir=None,
        shared_cache: bool = True,
        cache_max_bytes: int = 256 * 1024 * 1024,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._tempdir = None
        if data_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            data_dir = self._tempdir.name
        self.data_dir = os.fspath(data_dir)
        os.makedirs(self.data_dir, exist_ok=True)
        self.spill_path = (
            os.path.join(self.data_dir, "cache-spill.jsonl") if shared_cache else None
        )
        self.cache_max_bytes = int(cache_max_bytes)
        self.jobs: dict[str, Job] = {}
        #: Registered simulator-worker base URLs, in registration order.
        self.sim_workers: list[str] = []
        self._lock = threading.Lock()
        self._queue: queue.Queue = queue.Queue()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-service-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------
    def submit_run(self, spec_dict: dict) -> Job:
        """Queue one ``RunSpec`` job; raises :class:`SpecError` if invalid."""
        spec = RunSpec.from_dict(spec_dict)
        validate_run_spec(spec)
        return self._enqueue("run", spec.to_dict())

    def submit_sweep(self, spec_dict: dict) -> Job:
        """Queue one ``SweepSpec`` job; raises :class:`SpecError` if invalid."""
        spec = SweepSpec.from_dict(spec_dict)
        validate_sweep_spec(spec)
        return self._enqueue("sweep", spec.to_dict())

    def _enqueue(self, kind: str, spec_dict: dict) -> Job:
        if self._closed:
            raise RuntimeError("the job manager is closed")
        job = Job(uuid.uuid4().hex[:12], kind, spec_dict)
        with self._lock:
            self.jobs[job.id] = job
        self._persist_event(job, job.transition("queued"))
        self._queue.put(job.id)
        return job

    # -- lookup ------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        """The job with ``job_id``; raises :class:`UnknownJobError`."""
        with self._lock:
            try:
                return self.jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def list_jobs(self) -> list[Job]:
        """Every known job, oldest submission first."""
        with self._lock:
            return sorted(self.jobs.values(), key=lambda job: job.created)

    # -- simulator-worker registry -----------------------------------------
    def register_worker(self, url: str) -> list[str]:
        """Add one ``repro worker`` daemon to the fleet; returns the fleet.

        The worker is health-checked at the door: an unreachable daemon
        raises :class:`UnreachableWorkerError` instead of poisoning every
        later ``engine="remote"`` job.  Registration is idempotent by URL.
        """
        from repro.engine.remote import normalize_worker_url

        url = normalize_worker_url(url)
        if not self._probe_worker(url):
            raise UnreachableWorkerError(url)
        with self._lock:
            if url not in self.sim_workers:
                self.sim_workers.append(url)
            return list(self.sim_workers)

    def list_workers(self) -> list[dict]:
        """The registered fleet with a fresh per-worker health verdict."""
        with self._lock:
            urls = list(self.sim_workers)
        return [{"url": url, "healthy": self._probe_worker(url)} for url in urls]

    @staticmethod
    def _probe_worker(url: str, timeout: float = 5.0) -> bool:
        import urllib.error
        import urllib.request

        try:
            request = urllib.request.Request(f"{url}/v1/health", method="GET")
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return bool(json.loads(response.read().decode("utf-8")).get("ok"))
        except (urllib.error.URLError, OSError, ValueError):
            return False

    def _remote_engine_fields(self, engine, engine_params) -> dict:
        """Engine fields injected into a remote job without its own fleet.

        Mirrors :meth:`_shared_cache_fields`: the injected worker list is
        execution detail, not job identity — ``job.spec`` keeps what the
        submitter sent.
        """
        if engine != "remote" or "workers" in (engine_params or {}):
            return {}
        with self._lock:
            urls = list(self.sim_workers)
        if not urls:
            return {}
        return {"engine_params": {**(engine_params or {}), "workers": ",".join(urls)}}

    # -- cancellation ------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Request cooperative cancellation; returns the job.

        Queued jobs cancel immediately (the worker skips them); running
        jobs wind down after their current generation.  Terminal jobs are
        left untouched.
        """
        job = self.get(job_id)
        # The queued->cancelled vs queued->running race is settled under
        # job.cond: whichever of cancel() and the worker's _try_start()
        # gets the lock first wins, and the loser sees the new state.
        with job.cond:
            if job.is_terminal:
                return job
            job.cancel_event.set()
            still_queued = job.state == "queued"
            if still_queued:
                job.state = "cancelled"
                job.finished = time.time()
        if still_queued:
            self._persist_event(job, job.emit("state", state="cancelled"))
        else:
            self._persist_event(job, job.emit("cancel_requested"))
        return job

    # -- event streaming ---------------------------------------------------
    def follow_events(self, job_id: str, start: int = 0, follow: bool = True):
        """Yield the job's events from ``start``; block for new ones.

        With ``follow=True`` the generator ends only after the job reached
        a terminal state *and* every event was delivered — the HTTP layer
        writes each yielded event as one NDJSON line.  ``follow=False``
        drains what exists now and returns.
        """
        job = self.get(job_id)
        index = start
        while True:
            with job.cond:
                if follow:
                    while index >= len(job.events) and not job.is_terminal:
                        job.cond.wait(timeout=0.5)
                batch = job.events[index:]
                terminal = job.is_terminal
            yield from batch
            index += len(batch)
            if not follow or (terminal and index >= len(job.events)):
                return

    # -- execution ---------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            job = self.get(job_id)
            if not self._try_start(job):
                continue  # cancelled while queued
            try:
                if job.kind == "run":
                    self._execute_run_job(job)
                else:
                    self._execute_sweep_job(job)
            except Exception as error:  # noqa: BLE001 - job isolation boundary
                job.error = {
                    "type": type(error).__name__,
                    "message": str(error),
                    "traceback": traceback.format_exc(),
                }
                self._persist_event(
                    job,
                    job.transition(
                        "failed", error=job.error["type"], message=job.error["message"]
                    ),
                )
                self._persist_result(job)

    def _try_start(self, job: Job) -> bool:
        """Atomically claim a queued job for execution (see :meth:`cancel`)."""
        with job.cond:
            if job.cancel_event.is_set() or job.is_terminal:
                return False
            job.state = "running"
            job.started = time.time()
        self._persist_event(job, job.emit("state", state="running"))
        return True

    def _shared_cache_fields(self, configured_cache) -> dict:
        """Cache fields injected into a job without its own cache config."""
        if configured_cache is not None or self.spill_path is None:
            return {}
        return {
            "cache": "lru",
            "cache_params": {
                "spill_path": self.spill_path,
                "max_bytes": self.cache_max_bytes,
            },
        }

    def _execute_run_job(self, job: Job) -> None:
        from repro.api.driver import optimize

        spec = RunSpec.from_dict(job.spec)
        injected = self._shared_cache_fields(spec.cache)
        injected.update(self._remote_engine_fields(spec.engine, spec.engine_params))
        if injected:
            spec = dataclasses.replace(spec, **injected)
        bridge = _RunJobBridge(job, on_event=lambda e: self._persist_event(job, e))
        result = optimize(spec, callbacks=[bridge])
        job.result = {"spec": job.spec, "result": result.to_dict()}
        cancelled = job.cancel_event.is_set() and result.reason == "callback_stop"
        self._persist_result(job)
        self._persist_event(
            job,
            job.transition(
                "cancelled" if cancelled else "succeeded",
                best_yield=result.best_yield,
                n_simulations=result.n_simulations,
                generations=result.generations,
                reason=result.reason,
            ),
        )

    def _execute_sweep_job(self, job: Job) -> None:
        from repro.sweep.executor import run_sweep

        spec = SweepSpec.from_dict(job.spec)
        injected = self._shared_cache_fields(spec.cache)
        injected.update(self._remote_engine_fields(spec.engine, spec.engine_params))
        if injected:
            spec = dataclasses.replace(spec, **injected)
        job.store_path = os.path.join(self.data_dir, f"job-{job.id}.store.jsonl")
        bridge = _SweepJobBridge(job, on_event=lambda e: self._persist_event(job, e))
        result = run_sweep(
            spec,
            workers=spec.workers or 1,
            store=job.store_path,
            callbacks=[bridge],
            cancel=job.cancel_event,
        )
        job.result = {
            "spec": job.spec,
            "records": [record.to_dict() for record in result.records],
            "executed": result.executed,
            "reused": result.reused,
            "cancelled": result.cancelled,
            "store_path": job.store_path,
        }
        self._persist_result(job)
        self._persist_event(
            job,
            job.transition(
                "cancelled" if result.cancelled else "succeeded",
                completed=len(result.records),
                total=spec.total_runs,
            ),
        )

    # -- persistence -------------------------------------------------------
    def _persist_event(self, job: Job, event: dict) -> None:
        path = os.path.join(self.data_dir, f"job-{job.id}.events.ndjson")
        try:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(event) + "\n")
        except OSError:
            pass  # events are observability, never worth failing a job over

    def _persist_result(self, job: Job) -> None:
        path = os.path.join(self.data_dir, f"job-{job.id}.json")
        payload = {"job": job.status_dict(), "result": job.result}
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, path)

    # -- lifecycle ---------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers (after their current job) and clean up."""
        if self._closed:
            return
        self._closed = True
        for job in self.list_jobs():
            if not job.is_terminal:
                job.cancel_event.set()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "JobManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
