"""Optimization-as-a-service: a long-lived job server over the repro stack.

The batch layers already speak JSON end to end — ``RunSpec``/``SweepSpec``
payloads in, ``MOHECOResult``/``RunRecord`` payloads out — so this package
adds the missing production pieces and nothing else:

* :class:`~repro.service.jobs.JobManager` — validation at the door
  (structured :class:`~repro.api.errors.SpecError`), a FIFO job queue and
  worker pool, per-job event logs, cooperative cancellation, a shared
  ledger-faithful warm cache (one LRU spill file across all tenants), and
  per-job persistence through the sweep
  :class:`~repro.sweep.store.ResultStore`.
* :class:`~repro.service.server.ServiceServer` / ``serve()`` — the
  stdlib-only HTTP surface: submit, poll, stream NDJSON progress, fetch,
  cancel (``repro serve``).
* :class:`~repro.service.client.ServiceClient` — the ``urllib`` client the
  ``repro submit/status/result/cancel`` commands wrap.

Results fetched from the service are bit-identical
(:meth:`~repro.core.moheco.MOHECOResult.identity_dict`) to a direct
:func:`repro.api.optimize` call with the same spec and seed — the service
changes where and when work runs, never what it computes.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import TERMINAL_STATES, Job, JobManager, UnknownJobError
from repro.service.server import ServiceServer, serve

__all__ = [
    "Job",
    "JobManager",
    "UnknownJobError",
    "TERMINAL_STATES",
    "ServiceServer",
    "serve",
    "ServiceClient",
    "ServiceError",
]
