"""Thin ``urllib`` client for the optimization service.

No dependencies beyond the standard library — the client the ``repro
submit/status/result/cancel`` CLI commands are built on, and the reference
for how any HTTP client should talk to the service: JSON bodies in, JSON
bodies out, NDJSON lines for the event stream.

>>> client = ServiceClient("http://127.0.0.1:8032")  # doctest: +SKIP
>>> job = client.submit_run({"problem": "sphere", "seed": 7})  # doctest: +SKIP
>>> for event in client.events(job["id"]):  # doctest: +SKIP
...     print(event["kind"])
>>> client.result(job["id"])["result"]["best_yield"]  # doctest: +SKIP
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request

from repro.service.jobs import TERMINAL_STATES

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response, with the parsed error body when any."""

    def __init__(
        self,
        status: int,
        payload: dict | None,
        url: str,
        retry_after: float | None = None,
    ) -> None:
        self.status = status
        self.payload = payload or {}
        #: Parsed ``Retry-After`` header (seconds), when the service sent
        #: one — e.g. on the 409 a too-early result fetch gets.
        self.retry_after = retry_after
        detail = self.payload.get("message") or self.payload.get("reason") or ""
        label = self.payload.get("error", "http_error")
        super().__init__(
            f"{label} ({status}) at {url}" + (f": {detail}" if detail else "")
        )


def _error_to_service_error(error: urllib.error.HTTPError, url: str) -> ServiceError:
    try:
        body = json.loads(error.read().decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        body = None
    retry_after = None
    raw = error.headers.get("Retry-After") if error.headers else None
    if raw is not None:
        try:
            retry_after = float(raw)
        except ValueError:
            pass  # HTTP-date form; treat as absent rather than parse dates
    return ServiceError(error.code, body, url, retry_after=retry_after)


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    base_url:
        Where the service listens, e.g. ``"http://127.0.0.1:8032"``.
    timeout:
        Socket timeout per request, seconds.  Event streams use a longer
        timeout internally (they block between generations by design).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- plumbing ----------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise _error_to_service_error(error, url) from error

    # -- endpoints ---------------------------------------------------------
    def health(self) -> dict:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def submit_run(self, spec: dict) -> dict:
        """Submit a ``RunSpec`` payload; returns the job status dict."""
        return self._request("POST", "/v1/runs", spec)

    def submit_sweep(self, spec: dict) -> dict:
        """Submit a ``SweepSpec`` payload; returns the job status dict."""
        return self._request("POST", "/v1/sweeps", spec)

    def jobs(self) -> list[dict]:
        """``GET /v1/jobs`` — every job the service knows about."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}/result`` — 409 (ServiceError) until terminal."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/{id}`` — request cooperative cancellation."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def register_worker(self, url: str) -> list[str]:
        """``POST /v1/workers`` — add a simulator worker; returns the fleet."""
        return self._request("POST", "/v1/workers", {"url": url})["workers"]

    def workers(self) -> list[dict]:
        """``GET /v1/workers`` — the fleet with per-worker health verdicts."""
        return self._request("GET", "/v1/workers")["workers"]

    def _stream_once(
        self, job_id: str, start: int, follow: bool, timeout: float | None = None
    ):
        """One ``GET .../events`` request, yielded line by line.

        Transport drops (connection reset, incomplete read, socket
        timeout) propagate to the caller; :meth:`events` turns them into a
        reconnect from its cursor.  Exposed separately so tests can
        monkeypatch injected disconnects.
        """
        suffix = f"?from={int(start)}" + ("" if follow else "&follow=0")
        url = f"{self.base_url}/v1/jobs/{job_id}/events{suffix}"
        request = urllib.request.Request(url, method="GET")
        if timeout is None:
            # Streams legitimately idle between generations; the per-request
            # timeout only guards a wedged server.
            timeout = max(self.timeout, 600.0) if follow else self.timeout
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                for line in response:
                    text = line.decode("utf-8").strip()
                    if text:
                        yield json.loads(text)
        except urllib.error.HTTPError as error:
            raise _error_to_service_error(error, url) from error

    def events(self, job_id: str, start: int = 0, follow: bool = True):
        """Iterate the job's NDJSON event stream as dicts.

        With ``follow=True`` (default) the iterator ends when the job
        reaches a terminal state; ``follow=False`` drains the current
        backlog and returns immediately.

        Following never busy-waits: the server parks each request under
        the job's condition variable, and a dropped connection (proxy
        idle-kill, service restart, socket timeout) reconnects from the
        ``?from=`` cursor of the last delivered event — every event is
        yielded exactly once across reconnects.  A retryable service
        error honors its ``Retry-After`` before reconnecting.
        """
        cursor = int(start)
        while True:
            dropped = False
            try:
                for event in self._stream_once(job_id, cursor, follow):
                    if "seq" in event:
                        cursor = max(cursor, int(event["seq"]) + 1)
                    yield event
            except ServiceError as error:
                if not follow or error.status not in (429, 503):
                    raise
                dropped = True
                time.sleep(error.retry_after if error.retry_after else 0.5)
            except (TimeoutError, http.client.HTTPException, OSError):
                if not follow:
                    raise
                dropped = True
                time.sleep(0.2)  # pace reconnects against a down service
            if not follow:
                return
            if not dropped:
                # Clean close: terminal-and-drained in the normal case, but
                # an idle middlebox can also close cleanly — trust the
                # job's state, not the connection's.
                if self.status(job_id)["state"] in TERMINAL_STATES:
                    return

    # -- conveniences ------------------------------------------------------
    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.2
    ) -> dict:
        """Block until the job is terminal; returns its final status dict.

        Waiting parks on the job's event stream (the server blocks the
        request under the job's condition variable until something
        happens) instead of polling status on an interval; ``poll`` only
        paces reconnection after a dropped stream.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        cursor = 0
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after {timeout}s"
                )
            remaining = None if deadline is None else deadline - time.monotonic()
            stream_timeout = (
                None if remaining is None else max(min(remaining, 600.0), 0.05)
            )
            try:
                for event in self._stream_once(
                    job_id, cursor, follow=True, timeout=stream_timeout
                ):
                    if "seq" in event:
                        cursor = max(cursor, int(event["seq"]) + 1)
                    if event.get("kind") == "state" and (
                        event.get("state") in TERMINAL_STATES
                    ):
                        break
            except (TimeoutError, http.client.HTTPException, OSError):
                # Dropped or timed-out stream: re-check status, then pace
                # the reconnect so a broken server can't spin this loop.
                time.sleep(
                    max(min(poll, remaining), 0.0) if remaining is not None else poll
                )
