"""Thin ``urllib`` client for the optimization service.

No dependencies beyond the standard library — the client the ``repro
submit/status/result/cancel`` CLI commands are built on, and the reference
for how any HTTP client should talk to the service: JSON bodies in, JSON
bodies out, NDJSON lines for the event stream.

>>> client = ServiceClient("http://127.0.0.1:8032")  # doctest: +SKIP
>>> job = client.submit_run({"problem": "sphere", "seed": 7})  # doctest: +SKIP
>>> for event in client.events(job["id"]):  # doctest: +SKIP
...     print(event["kind"])
>>> client.result(job["id"])["result"]["best_yield"]  # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service.jobs import TERMINAL_STATES

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response, with the parsed error body when any."""

    def __init__(self, status: int, payload: dict | None, url: str) -> None:
        self.status = status
        self.payload = payload or {}
        detail = self.payload.get("message") or self.payload.get("reason") or ""
        label = self.payload.get("error", "http_error")
        super().__init__(
            f"{label} ({status}) at {url}" + (f": {detail}" if detail else "")
        )


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    base_url:
        Where the service listens, e.g. ``"http://127.0.0.1:8032"``.
    timeout:
        Socket timeout per request, seconds.  Event streams use a longer
        timeout internally (they block between generations by design).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- plumbing ----------------------------------------------------------
    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        url = f"{self.base_url}{path}"
        data = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                body = None
            raise ServiceError(error.code, body, url) from error

    # -- endpoints ---------------------------------------------------------
    def health(self) -> dict:
        """``GET /v1/health``."""
        return self._request("GET", "/v1/health")

    def submit_run(self, spec: dict) -> dict:
        """Submit a ``RunSpec`` payload; returns the job status dict."""
        return self._request("POST", "/v1/runs", spec)

    def submit_sweep(self, spec: dict) -> dict:
        """Submit a ``SweepSpec`` payload; returns the job status dict."""
        return self._request("POST", "/v1/sweeps", spec)

    def jobs(self) -> list[dict]:
        """``GET /v1/jobs`` — every job the service knows about."""
        return self._request("GET", "/v1/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}``."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """``GET /v1/jobs/{id}/result`` — 409 (ServiceError) until terminal."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        """``DELETE /v1/jobs/{id}`` — request cooperative cancellation."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def events(self, job_id: str, start: int = 0, follow: bool = True):
        """Iterate the job's NDJSON event stream as dicts.

        With ``follow=True`` (default) the iterator ends when the job
        reaches a terminal state; ``follow=False`` drains the current
        backlog and returns immediately.
        """
        suffix = f"?from={int(start)}" + ("" if follow else "&follow=0")
        url = f"{self.base_url}/v1/jobs/{job_id}/events{suffix}"
        request = urllib.request.Request(url, method="GET")
        # Streams legitimately idle between generations; the per-request
        # timeout only guards a wedged server.
        stream_timeout = max(self.timeout, 600.0) if follow else self.timeout
        try:
            with urllib.request.urlopen(request, timeout=stream_timeout) as response:
                for line in response:
                    text = line.decode("utf-8").strip()
                    if text:
                        yield json.loads(text)
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                body = None
            raise ServiceError(error.code, body, url) from error

    # -- conveniences ------------------------------------------------------
    def wait(
        self, job_id: str, timeout: float | None = None, poll: float = 0.2
    ) -> dict:
        """Block until the job is terminal; returns its final status dict."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after {timeout}s"
                )
            time.sleep(poll)
