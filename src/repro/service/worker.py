"""The remote simulator worker daemon (stdlib-only).

A :class:`WorkerServer` is the host-side half of the streaming remote
engine (:class:`~repro.engine.remote.RemoteEngine`): a small
``ThreadingHTTPServer`` — the same shape as the optimization service's
:mod:`~repro.service.server` — that holds problems warm and evaluates
chunk requests with the local fused serial path
(:func:`~repro.engine.base.evaluate_pending`).

==========  ====================  ==========================================
verb        path                  meaning
==========  ====================  ==========================================
``GET``     ``/v1/health``        liveness + loaded problems + chunk/cache
                                  counters
``POST``    ``/v1/problems``      install a pickled problem (idempotent)
``POST``    ``/v1/evaluate``      evaluate one chunk; 409 if the problem
                                  token is unknown (parent re-installs)
==========  ====================  ==========================================

Workers are *pure*: they receive ``(designs, samples)`` chunks and return
performance rows.  All RNG streams, screener state, ledger accounting and
the warm-start cache partition stay in the parent, so a worker never has
to be consistent with anything — a crashed worker is replaced by
re-dispatching its in-flight chunks, bit-identically.

Worker-side evaluation cache
----------------------------
Each daemon keeps its own sample-keyed
:class:`~repro.engine.cache.LRUEvaluationCache` (on by default; disable
with ``repro worker --no-cache``): a re-dispatched chunk, a replayed
round from a parent running without its own cache, or a ladder rung
re-covering rows a cheaper rung already simulated is served from worker
memory instead of the simulator.  This is pure wall-clock — the rows a
hit returns are the rows the simulator would produce, ledger accounting
happens in the parent, and the parent-side warm cache (which sees hits
*before* dispatch) composes with it unchanged.  Hit counts ride back on
every ``/v1/evaluate`` response (``cache_hit_rows``) so the engine can
fold them into ``MOHECOResult.engine_decision``.

Problems arrive pickled (the ``_init_worker`` pattern of the process
pool, over HTTP): run workers only for parents you trust, exactly as you
would a ``multiprocessing`` pool.

Start one with ``repro worker --port 9101``, optionally self-registering
with a running service via ``--register http://service-host:8032``.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.engine.base import evaluate_pending
from repro.engine.cache import CachedRound, EvaluationCache, LRUEvaluationCache
from repro.engine.wire import ChunkRequest, decode_problem, encode_array

__all__ = ["WorkerServer", "serve_worker"]

log = logging.getLogger("repro.worker")


class WorkerServer(ThreadingHTTPServer):
    """HTTP simulator worker: problem store + chunk evaluator.

    Parameters
    ----------
    address:
        ``(host, port)`` to bind; port ``0`` picks an ephemeral port (read
        it back from :attr:`url`).
    fail_after:
        Fault-injection knob for tests and failure drills: after this many
        successfully evaluated chunks the worker answers 503 to every
        further evaluate call — a deterministic stand-in for a worker
        dying mid-round.  ``None`` (default) never fails.
    cache:
        Worker-side evaluation cache shared by every handler thread
        (:class:`~repro.engine.cache.LRUEvaluationCache` is
        thread-safe); ``None`` disables caching.  Hits skip the simulator
        but return identical rows, so caching never changes what a parent
        receives.
    """

    daemon_threads = True

    def __init__(
        self,
        address,
        fail_after: int | None = None,
        cache: EvaluationCache | None = None,
    ) -> None:
        #: token -> warm problem instance.
        self.problems: dict[str, object] = {}
        #: Chunks evaluated since start (monotonic; health reports it).
        self.chunks_served = 0
        self.rows_served = 0
        #: Rows served from the worker cache instead of the simulator.
        self.cache_hit_rows = 0
        self.fail_after = fail_after
        self.cache = cache
        self._lock = threading.Lock()
        super().__init__(address, _WorkerHandler)

    @property
    def url(self) -> str:
        """Base URL parents should dispatch to."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving; idempotent."""
        self.shutdown()
        self.server_close()
        if self.cache is not None:
            self.cache.close()

    # -- request bodies (called from handler threads) ----------------------
    def install_problem(self, payload: dict) -> str:
        """Store one pickled problem; returns its token (idempotent)."""
        token, problem = decode_problem(payload)
        with self._lock:
            self.problems[token] = problem
        return token

    def evaluate_chunk(self, chunk: ChunkRequest):
        """Evaluate one chunk with the fused serial path.

        Returns ``(performance rows, cache-hit row count)``, or ``None``
        when the chunk's problem token is not installed (the handler
        answers 409 and the parent re-installs + retries).
        """
        with self._lock:
            problem = self.problems.get(chunk.problem_token)
        if problem is None:
            return None
        pending = chunk.to_pending()
        if self.cache is None:
            rows, hit_rows = evaluate_pending(problem, pending), 0
        else:
            round_ = CachedRound(self.cache, problem, pending)
            missed = (
                evaluate_pending(problem, round_.misses)
                if round_.misses
                else None
            )
            rows = round_.assemble(missed)
            hit_rows = int(sum(round_.hit_rows))
        with self._lock:
            self.chunks_served += 1
            self.rows_served += chunk.n_rows
            self.cache_hit_rows += hit_rows
        return rows, hit_rows

    def _should_fail(self) -> bool:
        with self._lock:
            return self.fail_after is not None and self.chunks_served >= self.fail_after


class _WorkerHandler(BaseHTTPRequestHandler):
    server_version = "repro-worker/1"
    # Connection-close framing, like the service: every urllib-level
    # client can talk to it without chunked transfer-encoding support.
    protocol_version = "HTTP/1.0"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        log.debug("%s - %s", self.address_string(), format % args)

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(400, {"error": "invalid_json", "reason": str(error)})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "invalid_json", "reason": "not an object"})
            return None
        return payload

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path.split("?")[0] == "/v1/health":
            server: WorkerServer = self.server
            cache = server.cache
            self._send_json(
                200,
                {
                    "ok": True,
                    "role": "worker",
                    "problems": sorted(server.problems),
                    "chunks_served": server.chunks_served,
                    "rows_served": server.rows_served,
                    "cache_hit_rows": server.cache_hit_rows,
                    "cache": cache.stats.to_dict() if cache is not None else None,
                },
            )
            return
        self._send_json(404, {"error": "unknown_route", "path": self.path})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/v1/problems":
            payload = self._json_body()
            if payload is None:
                return
            try:
                token = self.server.install_problem(payload)
            except Exception as error:  # noqa: BLE001 - wire boundary
                self._send_json(
                    400, {"error": "bad_problem", "reason": str(error)}
                )
                return
            self._send_json(200, {"ok": True, "token": token})
            return
        if self.path == "/v1/evaluate":
            if self.server._should_fail():
                # Fault injection: behave like a worker whose simulator
                # died — the parent marks it dead and re-dispatches.
                self._send_json(503, {"error": "worker_failed"})
                return
            payload = self._json_body()
            if payload is None:
                return
            try:
                chunk = ChunkRequest.from_dict(payload)
            except (KeyError, TypeError, ValueError) as error:
                self._send_json(400, {"error": "bad_chunk", "reason": str(error)})
                return
            outcome = self.server.evaluate_chunk(chunk)
            if outcome is None:
                self._send_json(
                    409,
                    {
                        "error": "problem_not_loaded",
                        "token": chunk.problem_token,
                    },
                )
                return
            rows, hit_rows = outcome
            self._send_json(
                200,
                {
                    "ok": True,
                    "rows": encode_array(rows),
                    "cache_hit_rows": hit_rows,
                },
            )
            return
        self._send_json(404, {"error": "unknown_route", "path": self.path})


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 9101,
    *,
    fail_after: int | None = None,
    cache: bool = True,
    cache_bytes: int | None = 256 * 2**20,
) -> WorkerServer:
    """Build a ready-to-run :class:`WorkerServer` (does not block).

    The worker-side evaluation cache is on by default (``cache=False``
    disables it; ``cache_bytes`` sets its LRU byte budget).  Sample-level
    keying is used so partially overlapping chunks — different chunk
    boundaries, different OCBA allocations, ladder rungs re-covering
    cheap-rung rows — still replay every known row.

    Call ``serve_forever()`` on the result (the CLI's ``repro worker``
    does), or drive it from a background thread in tests.
    """
    worker_cache = (
        LRUEvaluationCache(max_bytes=cache_bytes, key="sample") if cache else None
    )
    return WorkerServer((host, port), fail_after=fail_after, cache=worker_cache)
