"""The HTTP face of the optimization service (stdlib-only).

A :class:`ServiceServer` is a ``ThreadingHTTPServer`` routing a small REST
surface onto a :class:`~repro.service.jobs.JobManager`:

==========  ============================  =======================================
verb        path                          meaning
==========  ============================  =======================================
``GET``     ``/v1/health``                liveness + queue counters
``POST``    ``/v1/runs``                  submit a ``RunSpec`` JSON body
``POST``    ``/v1/sweeps``                submit a ``SweepSpec`` JSON body
``GET``     ``/v1/jobs``                  list all jobs (oldest first)
``GET``     ``/v1/jobs/{id}``             job status
``GET``     ``/v1/jobs/{id}/events``      NDJSON event stream (``?from=N`` to
                                          skip, ``?follow=0`` to not block)
``GET``     ``/v1/jobs/{id}/result``      result payload (409 + ``Retry-After``
                                          until terminal)
``DELETE``  ``/v1/jobs/{id}``             cooperative cancel
``POST``    ``/v1/workers``               register a ``repro worker`` daemon
                                          (health-checked; 502 if unreachable)
``GET``     ``/v1/workers``               the registered simulator fleet
==========  ============================  =======================================

Malformed JSON and invalid specs answer 400 with the structured
:meth:`~repro.api.errors.SpecError.to_dict` body; unknown jobs answer 404.
The event stream stays open (one JSON object per line, flushed per event)
until the job reaches a terminal state — connection-close framing, so any
HTTP client that can iterate response lines can follow it.
"""

from __future__ import annotations

import json
import logging
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.api.errors import SpecError
from repro.service.jobs import JobManager, UnknownJobError, UnreachableWorkerError

__all__ = ["ServiceServer", "serve"]

log = logging.getLogger("repro.service")


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`JobManager`.

    Each request runs in its own thread, so long-lived event streams never
    block submissions or status polls.  ``close()`` shuts the listener and
    the manager down (owned managers only).
    """

    daemon_threads = True

    def __init__(self, address, manager: JobManager | None = None, **manager_kwargs):
        self.manager = (
            manager if manager is not None else JobManager(**manager_kwargs)
        )
        self._owns_manager = manager is None
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        """Base URL clients should talk to."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving and (for owned managers) the job workers too."""
        self.shutdown()
        self.server_close()
        if self._owns_manager:
            self.manager.close()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    # HTTP/1.0 framing: the NDJSON event stream is delimited by connection
    # close, which every urllib-level client understands without chunked
    # transfer-encoding support.
    protocol_version = "HTTP/1.0"

    # -- plumbing ----------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        log.debug("%s - %s", self.address_string(), format % args)

    def _send_json(
        self, code: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _json_body(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8") or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_json(
                400,
                {"error": "invalid_json", "reason": str(error)},
            )
            return None

    def _job(self, job_id: str):
        try:
            return self.server.manager.get(job_id)
        except UnknownJobError:
            self._send_json(404, {"error": "unknown_job", "id": job_id})
            return None

    # -- verbs -------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        if parsed.path == "/v1/workers":
            self._register_worker()
            return
        if parsed.path not in ("/v1/runs", "/v1/sweeps"):
            self._send_json(404, {"error": "unknown_route", "path": parsed.path})
            return
        payload = self._json_body()
        if payload is None:
            return
        manager = self.server.manager
        try:
            if parsed.path == "/v1/runs":
                job = manager.submit_run(payload)
            else:
                job = manager.submit_sweep(payload)
        except SpecError as error:
            self._send_json(400, error.to_dict())
            return
        self._send_json(201, job.status_dict())

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        parts = [part for part in parsed.path.split("/") if part]
        if parts == ["v1", "health"]:
            manager = self.server.manager
            jobs = manager.list_jobs()
            self._send_json(
                200,
                {
                    "ok": True,
                    "jobs": len(jobs),
                    "active": sum(1 for job in jobs if not job.is_terminal),
                },
            )
            return
        if parts == ["v1", "workers"]:
            self._send_json(200, {"workers": self.server.manager.list_workers()})
            return
        if parts == ["v1", "jobs"]:
            self._send_json(
                200,
                {
                    "jobs": [
                        job.status_dict() for job in self.server.manager.list_jobs()
                    ]
                },
            )
            return
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self._job(parts[2])
            if job is not None:
                self._send_json(200, job.status_dict())
            return
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"]:
            job = self._job(parts[2])
            if job is None:
                return
            if parts[3] == "result":
                self._get_result(job)
                return
            if parts[3] == "events":
                self._stream_events(job, parse_qs(parsed.query))
                return
        self._send_json(404, {"error": "unknown_route", "path": parsed.path})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        parts = [part for part in urlparse(self.path).path.split("/") if part]
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            job = self._job(parts[2])
            if job is not None:
                job = self.server.manager.cancel(job.id)
                self._send_json(202, job.status_dict())
            return
        self._send_json(404, {"error": "unknown_route", "path": self.path})

    # -- endpoint bodies ---------------------------------------------------
    def _register_worker(self) -> None:
        payload = self._json_body()
        if payload is None:
            return
        url = payload.get("url") if isinstance(payload, dict) else None
        if not url or not isinstance(url, str):
            self._send_json(
                400, {"error": "bad_request", "reason": "body needs a 'url' string"}
            )
            return
        try:
            fleet = self.server.manager.register_worker(url)
        except UnreachableWorkerError as error:
            self._send_json(502, {"error": "worker_unreachable", "url": error.url})
            return
        except ValueError as error:
            self._send_json(400, {"error": "bad_request", "reason": str(error)})
            return
        self._send_json(201, {"ok": True, "workers": fleet})

    def _get_result(self, job) -> None:
        if not job.is_terminal:
            # Retry-After tells well-behaved pollers how long to back off
            # (the event stream is still the no-poll way to wait).
            self._send_json(
                409,
                {
                    "error": "not_finished",
                    "id": job.id,
                    "state": job.state,
                },
                headers={"Retry-After": "1"},
            )
            return
        self._send_json(
            200,
            {
                "id": job.id,
                "kind": job.kind,
                "state": job.state,
                "result": job.result,
                "error": job.error,
            },
        )

    def _stream_events(self, job, query: dict) -> None:
        try:
            start = int(query.get("from", ["0"])[0])
        except ValueError:
            self._send_json(400, {"error": "bad_query", "reason": "from must be int"})
            return
        follow = query.get("follow", ["1"])[0] not in ("0", "false", "no")
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            for event in self.server.manager.follow_events(
                job.id, start=start, follow=follow
            ):
                self.wfile.write((json.dumps(event) + "\n").encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up


def serve(
    host: str = "127.0.0.1",
    port: int = 8032,
    *,
    manager: JobManager | None = None,
    **manager_kwargs,
) -> ServiceServer:
    """Build a ready-to-run :class:`ServiceServer` (does not block).

    Call ``serve_forever()`` on the result (the CLI's ``repro serve``
    does), or drive it from a background thread in tests.  ``port=0``
    binds an ephemeral port — read it back from ``server.url``.
    """
    return ServiceServer((host, port), manager=manager, **manager_kwargs)
