"""Simulation budget accounting.

The paper's efficiency claims (Tables 2 and 4) are stated in *number of
circuit simulations*: each Monte-Carlo sample that is actually evaluated by
the circuit simulator counts as one simulation.  This module provides the
single source of truth for that count.

Design notes
------------
* The ledger is an explicit object passed to the components that consume
  budget (yield estimators, feasibility checks, local search).  There is no
  global mutable state; experiments create one ledger per run.
* Acceptance sampling *skips* simulations by classifying easy samples with a
  cheap surrogate.  Skipped samples are recorded separately
  (``screened_out``) and never counted as simulations, mirroring how the
  paper credits AS with reducing the simulation count.
* Surrogate screening (:mod:`repro.compose`) prunes whole *candidates*
  before any of their samples are drawn.  Pruned candidates charge zero
  simulations; the count of pruned candidates is recorded under the
  ``pruned`` column so efficiency reports can show what the screener
  saved.  Unlike ``cached`` the column is deterministic — prune decisions
  are part of the result identity — so it participates in cross-backend
  equality checks.
* Warm-start caching replays performance rows the run (or a previous run)
  already computed.  Replayed rows are recorded under the separate
  ``cached`` column; under the default ledger-faithful accounting they are
  *still* charged to their category — the method needed those samples, the
  machine just did not recompute them — so :attr:`SimulationLedger.total`
  matches a cache-off run exactly.  Only the explicit
  ``count_hits=False`` cache mode skips the charge.
* Categories let experiments break the total down (stage-1 OCBA sims,
  stage-2 max-N sims, feasibility checks, local search, reference MC).  The
  *reference* category is excluded from :attr:`total` because the paper's
  tables exclude the 50 000-sample verification runs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimulationLedger", "LedgerSnapshot"]

#: Category used for high-N verification MC runs; excluded from ``total``.
REFERENCE_CATEGORY = "reference"


@dataclass
class LedgerSnapshot:
    """Immutable view of a ledger at a point in time."""

    total: int
    by_category: dict[str, int]
    screened_out: int
    cached: int = 0
    pruned: int = 0

    def delta(self, earlier: "LedgerSnapshot") -> int:
        """Simulations charged between ``earlier`` and this snapshot."""
        return self.total - earlier.total


class SimulationLedger:
    """Counts circuit simulations, broken down by category.

    Example
    -------
    >>> ledger = SimulationLedger()
    >>> ledger.charge(500, category="stage2")
    >>> ledger.total
    500
    """

    def __init__(self) -> None:
        self._by_category: dict[str, int] = {}
        self._screened_out: int = 0
        self._cached: int = 0
        self._pruned: int = 0

    # -- charging ---------------------------------------------------------
    def charge(self, n: int, category: str = "mc") -> None:
        """Record ``n`` circuit simulations under ``category``."""
        if n < 0:
            raise ValueError(f"cannot charge a negative simulation count: {n}")
        if n == 0:
            return
        self._by_category[category] = self._by_category.get(category, 0) + int(n)

    def record_screened(self, n: int) -> None:
        """Record ``n`` samples classified without a full simulation."""
        if n < 0:
            raise ValueError(f"cannot record a negative screened count: {n}")
        self._screened_out += int(n)

    def record_cached(self, n: int) -> None:
        """Record ``n`` sample rows replayed from a warm-start cache.

        This is observability, not accounting: under the default
        ledger-faithful policy the same rows are *also* charged to their
        category via :meth:`charge`, so totals do not move.
        """
        if n < 0:
            raise ValueError(f"cannot record a negative cached count: {n}")
        self._cached += int(n)

    def record_pruned(self, n: int) -> None:
        """Record ``n`` candidates a surrogate screener pruned unsimulated.

        Pruned candidates never charge: no feasibility check, no MC
        samples.  The column only documents how much work the screener
        declined on the method's behalf.
        """
        if n < 0:
            raise ValueError(f"cannot record a negative pruned count: {n}")
        self._pruned += int(n)

    # -- reading ----------------------------------------------------------
    @property
    def total(self) -> int:
        """Total charged simulations, excluding the reference category."""
        return sum(
            count
            for category, count in self._by_category.items()
            if category != REFERENCE_CATEGORY
        )

    @property
    def grand_total(self) -> int:
        """Total including reference-MC verification simulations."""
        return sum(self._by_category.values())

    @property
    def screened_out(self) -> int:
        """Samples acceptance sampling resolved without simulation."""
        return self._screened_out

    @property
    def cached(self) -> int:
        """Sample rows replayed from a warm-start evaluation cache."""
        return self._cached

    @property
    def pruned(self) -> int:
        """Candidates a surrogate screener pruned before simulation."""
        return self._pruned

    def by_category(self) -> dict[str, int]:
        """A copy of the per-category breakdown."""
        return dict(self._by_category)

    def count(self, category: str) -> int:
        """Simulations charged under one category."""
        return self._by_category.get(category, 0)

    def snapshot(self) -> LedgerSnapshot:
        """Capture the current state (cheap, immutable)."""
        return LedgerSnapshot(
            total=self.total,
            by_category=self.by_category(),
            screened_out=self._screened_out,
            cached=self._cached,
            pruned=self._pruned,
        )

    def reset(self) -> None:
        """Zero all counters (used between experiment repetitions)."""
        self._by_category.clear()
        self._screened_out = 0
        self._cached = 0
        self._pruned = 0

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "by_category": self.by_category(),
            "screened_out": self._screened_out,
            "cached": self._cached,
            "pruned": self._pruned,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationLedger":
        """Rebuild a ledger from :meth:`to_dict` output."""
        ledger = cls()
        for category, count in data.get("by_category", {}).items():
            ledger.charge(int(count), category=category)
        ledger.record_screened(int(data.get("screened_out", 0)))
        ledger.record_cached(int(data.get("cached", 0)))
        ledger.record_pruned(int(data.get("pruned", 0)))
        return ledger

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self._by_category.items()))
        return (
            f"SimulationLedger(total={self.total}, {parts}, "
            f"screened={self._screened_out}, cached={self._cached}, "
            f"pruned={self._pruned})"
        )
