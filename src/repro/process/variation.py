"""Inter-die / intra-die process variation model.

The paper's process spaces decompose into

* **inter-die** variables — one draw per fabricated die, shared by every
  device on it (e.g. ``TOXRn``, the NMOS oxide-thickness ratio), and
* **intra-die** (mismatch) variables — one draw per device, modelling local
  fluctuations.  The paper uses 4 per transistor: TOX, VTH0, LD, WD.

Layout
------
A process sample is a row vector.  Columns are ordered *inter-die variables
first*, then per-device mismatch blocks in device order::

    [ inter_1 .. inter_K | dev1.dTOX dev1.dVTH0 dev1.dLD dev1.dWD | dev2... ]

Mismatch variables are stored as **standard normal scores**; the Pelgrom
area-law scaling ``sigma = A / sqrt(W * L)`` is applied later by the
technology when device geometry is known.  This keeps the sample space
fixed-dimensional and design-independent, which is what lets the same sample
matrix be reused across candidate designs (common random numbers) and what
makes the variable counts match the paper (80 for example 1, 123 for
example 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.distributions import NormalDistribution
from repro.process.parameters import ParameterGroup, StatisticalParameter

__all__ = ["IntraDieSpec", "ProcessVariationModel"]

#: Default per-device mismatch variables, in the paper's order.
DEFAULT_MISMATCH_VARS = ("dTOX", "dVTH0", "dLD", "dWD")


@dataclass(frozen=True)
class IntraDieSpec:
    """Mismatch layout: which per-device variables exist.

    The variables are dimensionless standard-normal scores; their physical
    magnitude comes from the technology's Pelgrom coefficients.
    """

    variables: tuple[str, ...] = DEFAULT_MISMATCH_VARS

    @property
    def per_device(self) -> int:
        """Number of mismatch variables per device."""
        return len(self.variables)


class ProcessVariationModel:
    """The full statistical space of one circuit in one technology.

    Parameters
    ----------
    inter:
        Group of inter-die statistical parameters (physical distributions).
    device_names:
        Ordered names of the mismatch-carrying devices (the circuit's
        transistors).
    intra:
        Which mismatch variables each device carries.
    """

    def __init__(
        self,
        inter: ParameterGroup,
        device_names: list[str],
        intra: IntraDieSpec | None = None,
    ) -> None:
        if len(set(device_names)) != len(device_names):
            raise ValueError(f"duplicate device names: {device_names}")
        self.inter = inter
        self.device_names = list(device_names)
        self.intra = intra or IntraDieSpec()
        self._device_index = {name: i for i, name in enumerate(self.device_names)}

        # The full group (inter + standard-normal mismatch scores) drives
        # sampling; building it once fixes the column layout.
        full = ParameterGroup(list(inter))
        for device in self.device_names:
            for var in self.intra.variables:
                full.add(
                    StatisticalParameter(
                        f"{device}.{var}",
                        NormalDistribution(0.0, 1.0),
                        description=f"mismatch score of {var} on {device}",
                    )
                )
        self._full = full

    # -- dimensions ---------------------------------------------------------
    @property
    def n_inter(self) -> int:
        """Number of inter-die variables."""
        return len(self.inter)

    @property
    def n_intra(self) -> int:
        """Number of intra-die (mismatch) variables."""
        return len(self.device_names) * self.intra.per_device

    @property
    def dimension(self) -> int:
        """Total process-space dimension (paper: 80 / 123)."""
        return self.n_inter + self.n_intra

    @property
    def names(self) -> list[str]:
        """All variable names in column order."""
        return self._full.names

    @property
    def full_group(self) -> ParameterGroup:
        """The combined parameter group (inter + mismatch scores)."""
        return self._full

    # -- sampling -------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Primitive Monte-Carlo draws, shape ``(n, dimension)``."""
        return self._full.sample(n, rng)

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Map uniform(0,1) variates through the marginal inverse CDFs."""
        return self._full.from_uniform(u)

    def nominal(self) -> np.ndarray:
        """The nominal process point (inter means, zero mismatch)."""
        point = np.zeros(self.dimension)
        point[: self.n_inter] = self.inter.means()
        return point

    # -- slicing ---------------------------------------------------------------
    def inter_values(self, samples: np.ndarray) -> dict[str, np.ndarray]:
        """Inter-die variables as a name -> column-vector mapping."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        return {
            name: samples[:, j] for j, name in enumerate(self.inter.names)
        }

    def inter_matrix(self, samples: np.ndarray) -> np.ndarray:
        """The inter-die block of ``samples``, shape ``(n, n_inter)``."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        return samples[:, : self.n_inter]

    def mismatch_scores(self, samples: np.ndarray, device: str) -> np.ndarray:
        """Standard-normal mismatch scores for one device.

        Returns shape ``(n, per_device)`` with columns in
        ``self.intra.variables`` order.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        idx = self._device_index[device]
        start = self.n_inter + idx * self.intra.per_device
        return samples[:, start : start + self.intra.per_device]

    def mismatch_column(self, samples: np.ndarray, device: str, var: str) -> np.ndarray:
        """One mismatch score column, e.g. ``("M1", "dVTH0")``."""
        scores = self.mismatch_scores(samples, device)
        return scores[:, self.intra.variables.index(var)]

    def describe(self) -> str:
        """Summary string (counts per category)."""
        return (
            f"ProcessVariationModel: {self.dimension} variables = "
            f"{self.n_inter} inter-die + {self.n_intra} intra-die "
            f"({len(self.device_names)} devices x {self.intra.per_device})"
        )
