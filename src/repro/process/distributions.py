"""Marginal distributions for statistical process parameters.

Each distribution exposes

* ``sample(n, rng)`` — direct Monte-Carlo draws,
* ``ppf(u)`` — inverse CDF, mapping uniform(0,1) variates onto the
  distribution.  This is what Latin-hypercube and Sobol sampling use: they
  generate stratified/low-discrepancy uniforms and push them through the
  inverse CDF, preserving their space-filling structure in the target space.
* ``mean`` / ``std`` — first two moments (used by linearised screeners).

Only the few families that real statistical device models use are
implemented; all are thin, fully vectorised wrappers over NumPy/SciPy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "Distribution",
    "NormalDistribution",
    "LognormalDistribution",
    "UniformDistribution",
    "TruncatedNormalDistribution",
]


class Distribution(ABC):
    """A one-dimensional marginal distribution."""

    @abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` iid variates."""

    @abstractmethod
    def ppf(self, u: np.ndarray) -> np.ndarray:
        """Inverse CDF evaluated at uniform variates ``u`` in (0, 1)."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Distribution mean."""

    @property
    @abstractmethod
    def std(self) -> float:
        """Distribution standard deviation."""


class NormalDistribution(Distribution):
    """Gaussian N(mu, sigma^2); the workhorse of statistical device models."""

    def __init__(self, mu: float = 0.0, sigma: float = 1.0) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=n)

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return self.mu + self.sigma * _ndtri(u)

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def std(self) -> float:
        return self.sigma

    def __repr__(self) -> str:
        return f"NormalDistribution(mu={self.mu:g}, sigma={self.sigma:g})"


class LognormalDistribution(Distribution):
    """Lognormal: exp(N(mu_log, sigma_log^2)).

    Used for strictly-positive parameters with multiplicative variation
    (e.g. junction capacitance ratios).
    """

    def __init__(self, mu_log: float = 0.0, sigma_log: float = 0.1) -> None:
        if sigma_log < 0:
            raise ValueError(f"sigma_log must be non-negative, got {sigma_log}")
        self.mu_log = float(mu_log)
        self.sigma_log = float(sigma_log)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.exp(rng.normal(self.mu_log, self.sigma_log, size=n))

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return np.exp(self.mu_log + self.sigma_log * _ndtri(u))

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu_log + 0.5 * self.sigma_log**2))

    @property
    def std(self) -> float:
        variance = (np.exp(self.sigma_log**2) - 1.0) * np.exp(
            2.0 * self.mu_log + self.sigma_log**2
        )
        return float(np.sqrt(variance))

    def __repr__(self) -> str:
        return f"LognormalDistribution(mu_log={self.mu_log:g}, sigma_log={self.sigma_log:g})"


class UniformDistribution(Distribution):
    """Uniform on [low, high]; occasionally used for poorly-characterised
    parameters in early PDK revisions."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = float(low)
        self.high = float(high)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return self.low + (self.high - self.low) * u

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def std(self) -> float:
        return (self.high - self.low) / np.sqrt(12.0)

    def __repr__(self) -> str:
        return f"UniformDistribution(low={self.low:g}, high={self.high:g})"


class TruncatedNormalDistribution(Distribution):
    """Gaussian truncated to [low, high].

    Foundry models truncate physical parameters (oxide thickness cannot go
    negative); truncation also keeps extreme LHS strata finite.
    """

    def __init__(self, mu: float, sigma: float, low: float, high: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if high <= low:
            raise ValueError(f"high ({high}) must be > low ({low})")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.low = float(low)
        self.high = float(high)
        self._a = (self.low - self.mu) / self.sigma
        self._b = (self.high - self.mu) / self.sigma
        self._frozen = _scipy_stats.truncnorm(self._a, self._b, loc=self.mu, scale=self.sigma)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # Inverse-CDF sampling keeps the draw reproducible from ``rng``
        # without touching scipy's global random state.
        return self.ppf(rng.uniform(0.0, 1.0, size=n))

    def ppf(self, u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        return self._frozen.ppf(u)

    @property
    def mean(self) -> float:
        return float(self._frozen.mean())

    @property
    def std(self) -> float:
        return float(self._frozen.std())

    def __repr__(self) -> str:
        return (
            f"TruncatedNormalDistribution(mu={self.mu:g}, sigma={self.sigma:g}, "
            f"low={self.low:g}, high={self.high:g})"
        )


def _ndtri(u: np.ndarray) -> np.ndarray:
    """Standard-normal inverse CDF, clipped away from 0/1 for stability."""
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    return _scipy_stats.norm.ppf(u)
