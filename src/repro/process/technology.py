"""Technology abstraction: nominal models + statistical variation.

A :class:`Technology` bundles

* supply voltage and geometry limits,
* nominal NMOS/PMOS model cards,
* the inter-die statistical parameter group (the named variables of the
  paper's experiments, e.g. ``TOXRn``, ``VTH0Rp``), and
* Pelgrom mismatch coefficients for the per-device intra-die variables.

Concrete technologies (``repro.circuit.tech.c035``, ``...n90``) implement
:meth:`realize`, which applies one matrix of process samples to one device
and returns vectorised effective parameters (:class:`DeviceArrays`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.circuit.mosfet import DeviceArrays, MosfetModelCard
from repro.process.parameters import ParameterGroup
from repro.process.variation import IntraDieSpec, ProcessVariationModel

__all__ = ["PelgromCoefficients", "Technology"]


@dataclass(frozen=True)
class PelgromCoefficients:
    """Area-law mismatch coefficients: ``sigma = A / sqrt(W*L)``.

    Units chosen so that W, L in metres give the physical sigma directly:

    * ``avt`` [V*m] — threshold-voltage mismatch,
    * ``atox`` [m] — relative oxide-thickness mismatch (sigma is unitless),
    * ``ald`` [m^2] — lateral-diffusion mismatch (sigma in metres),
    * ``awd`` [m^2] — width-reduction mismatch (sigma in metres).
    """

    avt: float
    atox: float
    ald: float
    awd: float

    def sigma_vth(self, w: float, l: float) -> float:
        """Threshold mismatch sigma [V] for a device of drawn W, L [m]."""
        return self.avt / np.sqrt(w * l)

    def sigma_tox_rel(self, w: float, l: float) -> float:
        """Relative oxide-thickness mismatch sigma [-]."""
        return self.atox / np.sqrt(w * l)

    def sigma_ld(self, w: float, l: float) -> float:
        """Lateral-diffusion mismatch sigma [m]."""
        return self.ald / np.sqrt(w * l)

    def sigma_wd(self, w: float, l: float) -> float:
        """Width-reduction mismatch sigma [m]."""
        return self.awd / np.sqrt(w * l)


class Technology(ABC):
    """Base class for synthetic CMOS technologies.

    Subclasses define the nominal cards, the inter-die parameter group and
    the physical effect of every statistical variable (:meth:`realize`).
    """

    #: Human-readable name, e.g. "C035".
    name: str = "base"
    #: Supply voltage [V].
    vdd: float = 3.3
    #: Minimum drawn channel length [m].
    lmin: float = 0.35e-6
    #: Minimum drawn width [m].
    wmin: float = 0.5e-6

    def __init__(self) -> None:
        self.nmos = self.build_nmos()
        self.pmos = self.build_pmos()
        self.inter = self.build_inter_group()
        self.pelgrom = {
            "n": self.build_pelgrom("n"),
            "p": self.build_pelgrom("p"),
        }

    # -- construction hooks -------------------------------------------------
    @abstractmethod
    def build_nmos(self) -> MosfetModelCard:
        """Nominal NMOS model card."""

    @abstractmethod
    def build_pmos(self) -> MosfetModelCard:
        """Nominal PMOS model card."""

    @abstractmethod
    def build_inter_group(self) -> ParameterGroup:
        """The inter-die statistical parameter group."""

    @abstractmethod
    def build_pelgrom(self, polarity: str) -> PelgromCoefficients:
        """Mismatch coefficients for one polarity."""

    # -- variation application -------------------------------------------------
    @abstractmethod
    def realize(
        self,
        polarity: str,
        w: float,
        l: float,
        inter: dict[str, np.ndarray],
        scores: np.ndarray,
    ) -> DeviceArrays:
        """Effective device parameters for one device over all samples.

        Parameters
        ----------
        polarity:
            ``"n"`` or ``"p"``.
        w, l:
            Drawn geometry [m].
        inter:
            Inter-die variable name -> per-sample value array.
        scores:
            Standard-normal mismatch scores, shape ``(n_samples, 4)`` with
            columns (dTOX, dVTH0, dLD, dWD).
        """

    # -- helpers ------------------------------------------------------------------
    def card(self, polarity: str) -> MosfetModelCard:
        """Model card for a polarity."""
        if polarity == "n":
            return self.nmos
        if polarity == "p":
            return self.pmos
        raise ValueError(f"polarity must be 'n' or 'p', got {polarity!r}")

    def variation_model(self, device_names: list[str]) -> ProcessVariationModel:
        """Build the full process space for a circuit's device list."""
        return ProcessVariationModel(self.inter, device_names, IntraDieSpec())

    def realize_nominal(self, polarity: str, w: float, l: float) -> DeviceArrays:
        """Effective parameters at the nominal process point (n_samples=1)."""
        inter = {name: np.array([self.inter[name].distribution.mean])
                 for name in self.inter.names}
        scores = np.zeros((1, 4))
        return self.realize(polarity, w, l, inter, scores)

    def clip_geometry(self, w: float, l: float) -> tuple[float, float]:
        """Clamp drawn geometry to the technology's legal minima."""
        return max(w, self.wmin), max(l, self.lmin)
