"""Named statistical parameters and ordered groups of them.

A :class:`StatisticalParameter` couples a name ("VTH0Rn") with its marginal
distribution.  A :class:`ParameterGroup` is an ordered collection that maps
between named parameters and the columns of sample matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.process.distributions import Distribution, NormalDistribution

__all__ = ["StatisticalParameter", "ParameterGroup"]


@dataclass(frozen=True)
class StatisticalParameter:
    """One named statistical variable.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"TOXRn"`` (inter-die oxide-thickness ratio
        for NMOS devices) or ``"M1.dVTH0"`` (mismatch of device M1).
    distribution:
        Marginal distribution of the variable.
    description:
        Optional free-text documentation shown by ``describe()``.
    """

    name: str
    distribution: Distribution
    description: str = ""

    @classmethod
    def normal(
        cls, name: str, mu: float = 0.0, sigma: float = 1.0, description: str = ""
    ) -> "StatisticalParameter":
        """Shorthand for a Gaussian parameter."""
        return cls(name, NormalDistribution(mu, sigma), description)


class ParameterGroup:
    """Ordered, name-indexed collection of statistical parameters.

    The order fixes the column layout of sample matrices of shape
    ``(n_samples, len(group))``.
    """

    def __init__(self, parameters: list[StatisticalParameter] | None = None) -> None:
        self._parameters: list[StatisticalParameter] = []
        self._index: dict[str, int] = {}
        for parameter in parameters or []:
            self.add(parameter)

    # -- construction -----------------------------------------------------
    def add(self, parameter: StatisticalParameter) -> None:
        """Append a parameter; names must be unique within the group."""
        if parameter.name in self._index:
            raise ValueError(f"duplicate parameter name: {parameter.name!r}")
        self._index[parameter.name] = len(self._parameters)
        self._parameters.append(parameter)

    def extend(self, parameters: list[StatisticalParameter]) -> None:
        """Append several parameters."""
        for parameter in parameters:
            self.add(parameter)

    # -- introspection ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self):
        return iter(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> StatisticalParameter:
        return self._parameters[self._index[name]]

    @property
    def names(self) -> list[str]:
        """Parameter names in column order."""
        return [parameter.name for parameter in self._parameters]

    def index_of(self, name: str) -> int:
        """Column index of parameter ``name``."""
        return self._index[name]

    def column(self, samples: np.ndarray, name: str) -> np.ndarray:
        """Extract the column of ``samples`` belonging to ``name``."""
        return np.asarray(samples)[:, self._index[name]]

    # -- moments (used by linearised screeners and LHS) ---------------------
    def means(self) -> np.ndarray:
        """Vector of marginal means in column order."""
        return np.array([parameter.distribution.mean for parameter in self._parameters])

    def stds(self) -> np.ndarray:
        """Vector of marginal standard deviations in column order."""
        return np.array([parameter.distribution.std for parameter in self._parameters])

    # -- sampling -----------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Independent Monte-Carlo draws, shape ``(n, len(group))``."""
        if n < 0:
            raise ValueError(f"sample count must be non-negative, got {n}")
        out = np.empty((n, len(self._parameters)))
        for j, parameter in enumerate(self._parameters):
            out[:, j] = parameter.distribution.sample(n, rng)
        return out

    def from_uniform(self, u: np.ndarray) -> np.ndarray:
        """Map a uniform(0,1) matrix onto the parameter space via inverse CDFs.

        ``u`` has shape ``(n, len(group))``; used by LHS/Sobol samplers.
        """
        u = np.asarray(u, dtype=float)
        if u.ndim != 2 or u.shape[1] != len(self._parameters):
            raise ValueError(
                f"uniform matrix must have shape (n, {len(self._parameters)}), got {u.shape}"
            )
        out = np.empty_like(u)
        for j, parameter in enumerate(self._parameters):
            out[:, j] = parameter.distribution.ppf(u[:, j])
        return out

    def describe(self) -> str:
        """Human-readable listing with distributions."""
        lines = []
        for parameter in self._parameters:
            note = f"  # {parameter.description}" if parameter.description else ""
            lines.append(f"{parameter.name}: {parameter.distribution!r}{note}")
        return "\n".join(lines)
