"""Statistical process-variation modelling.

This package models how fabrication varies device parameters:

* :mod:`repro.process.distributions` — the marginal distributions that
  statistical parameters follow, with inverse-CDF support so stratified
  samplers (LHS, Sobol) can map uniform strata onto them.
* :mod:`repro.process.parameters` — named statistical parameters and groups.
* :mod:`repro.process.variation` — the inter-die / intra-die decomposition:
  inter-die variables shift all devices of a type together, intra-die
  (mismatch) variables perturb each device independently with Pelgrom area
  scaling.
* :mod:`repro.process.technology` — a `Technology` bundles nominal device
  model cards with its statistical variation model.
"""

from repro.process.distributions import (
    Distribution,
    LognormalDistribution,
    NormalDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.variation import IntraDieSpec, ProcessVariationModel
from repro.process.technology import Technology

__all__ = [
    "Distribution",
    "NormalDistribution",
    "LognormalDistribution",
    "UniformDistribution",
    "TruncatedNormalDistribution",
    "StatisticalParameter",
    "ParameterGroup",
    "ProcessVariationModel",
    "IntraDieSpec",
    "Technology",
]
