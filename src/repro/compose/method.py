"""Config-composed optimization methods.

A composed method is declared, not written: a four-field config names its
parts and :func:`register_composed_method` turns it into a full method-
registry entry —

::

    register_composed_method(
        "moheco_screened",
        {
            "screener": "surrogate",
            "proposer": "de",
            "selection": "one_to_one",
            "backbone": "moheco",
        },
        description="...",
    )

The parts resolve by name from :mod:`repro.compose.parts`; the backbone
names a :class:`~repro.core.config.MOHECOConfig` factory, so every config
override the backbone accepts (``pop_size``, ``n_max``, ...) works
unchanged, plus the per-run ``screen_params`` dict for the screener.

:class:`ComposedMOHECO` is the one driver behind every config: a MOHECO
subclass that swaps the three composable loop stages (`_propose_trials`,
`_make_trials`, `_select`) for the named parts.  Screening happens in
``_make_trials`` — *before* the step-3 feasibility check — so a pruned
trial charges zero simulations; the ledger's ``pruned`` column counts
them, and every decision is appended to ``MOHECOResult.screen_trace``
(part of the result identity, bit-identical across engines and caches).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.api.registries import register_method
from repro.compose.parts import (
    get_selection,
    make_proposer,
    make_screener,
    register_selection,
)
from repro.core.config import MOHECOConfig
from repro.core.moheco import MOHECO, MOHECOResult
from repro.core.state import Individual
from repro.optim.constraints import deb_better
from repro.rng import spawn

# Part implementations register themselves on import.
import repro.compose.proposers  # noqa: F401
import repro.compose.screeners  # noqa: F401

__all__ = [
    "BACKBONES",
    "ComposedMOHECO",
    "run_composed",
    "register_composed_method",
]

#: Backbone name -> (MOHECOConfig factory, its budget-argument name).
BACKBONES = {
    "moheco": (MOHECOConfig.moheco, "n_max"),
    "oo_only": (MOHECOConfig.oo_only, "n_max"),
    "fixed_budget": (MOHECOConfig.fixed_budget, "n_fixed"),
}

COMPOSE_FIELDS = ("screener", "proposer", "selection", "backbone")


# -- built-in selection rules ----------------------------------------------
@register_selection("one_to_one")
def select_one_to_one(population: list[Individual], trials: list[Individual]) -> None:
    """Standard DE one-to-one replacement; the trial wins ties."""
    for i, trial in enumerate(trials):
        if not deb_better(population[i].fitness(), trial.fitness()):
            population[i] = trial


@register_selection("greedy")
def select_greedy(population: list[Individual], trials: list[Individual]) -> None:
    """Parent-biased replacement: the trial must *strictly* beat it."""
    for i, trial in enumerate(trials):
        if deb_better(trial.fitness(), population[i].fitness()):
            population[i] = trial


def _normalize_compose(compose: dict) -> dict:
    compose = dict(compose or {})
    unknown = set(compose) - set(COMPOSE_FIELDS) - {"proposer_params"}
    if unknown:
        raise ValueError(
            f"unknown compose field(s) {sorted(unknown)}; valid: "
            f"{', '.join(COMPOSE_FIELDS)}, proposer_params"
        )
    missing = [field for field in COMPOSE_FIELDS if field not in compose]
    if missing:
        raise ValueError(f"compose config is missing field(s) {missing}")
    if compose["backbone"] not in BACKBONES:
        raise ValueError(
            f"unknown backbone {compose['backbone']!r}; valid: "
            f"{', '.join(sorted(BACKBONES))}"
        )
    return compose


def _backbone_builder(backbone: str):
    """Overrides-dict -> validated ``MOHECOConfig`` for a backbone name.

    Mirrors the semantics of the plain method entries: the backbone's
    budget alias (``n_max``/``n_fixed``) routes to the factory, every
    other override goes through ``with_overrides``, and unknown names
    raise ``ValueError`` — surfaced as a structured ``SpecError`` by
    spec validation.
    """
    config_factory, budget_arg = BACKBONES[backbone]
    config_fields = {field.name for field in dataclasses.fields(MOHECOConfig)}

    def build(overrides: dict) -> MOHECOConfig:
        overrides = dict(overrides)
        factory_kwargs = (
            {budget_arg: overrides.pop(budget_arg)} if budget_arg in overrides else {}
        )
        unknown = set(overrides) - config_fields
        if unknown:
            raise ValueError(
                f"unknown config override(s) {sorted(unknown)}; valid fields: "
                f"{', '.join(sorted(config_fields | {budget_arg}))}"
            )
        return config_factory(**factory_kwargs).with_overrides(**overrides)

    return build


def _check_screen_params(screen_params) -> None:
    if screen_params is not None and not isinstance(screen_params, dict):
        raise ValueError(
            f"screen_params must be a dict of screener knobs, got {screen_params!r}"
        )


class ComposedMOHECO(MOHECO):
    """MOHECO with its composable loop stages swapped for named parts.

    Parameters (on top of :class:`~repro.core.moheco.MOHECO`)
    ---------------------------------------------------------
    compose:
        The ``{screener, proposer, selection, backbone}`` config (part
        names; ``backbone`` is informational here — the caller resolves
        it to the ``config`` argument).  An optional ``proposer_params``
        dict configures the proposer statically.
    screen_params:
        Per-run screener knobs (validated by the screener constructor).

    The screener's randomness comes from one stream spawned off the
    optimizer RNG *at construction* — before any population draw — so its
    decisions depend only on the seed and the engine-invariant estimation
    results, never on backend, worker count or cache state.
    """

    def __init__(
        self,
        problem,
        config: MOHECOConfig | None = None,
        *,
        compose: dict,
        screen_params: dict | None = None,
        **kwargs,
    ) -> None:
        super().__init__(problem, config, **kwargs)
        _check_screen_params(screen_params)
        self.compose = _normalize_compose(compose)
        self._screener = make_screener(
            self.compose["screener"], screen_params, rng=spawn(self.rng)
        )
        self._proposer = make_proposer(
            self.compose["proposer"], self.compose.get("proposer_params")
        )
        self._selection = get_selection(self.compose["selection"])
        self._screen_trace = []
        self._generation = 0

    # -- composable stages --------------------------------------------------
    def _propose_trials(
        self, population: list[Individual], best_index: int
    ) -> np.ndarray:
        return self._proposer.propose(self, population, best_index)

    def _make_trials(self, trial_xs: np.ndarray) -> list[Individual]:
        """Screen, then feasibility-gate only the survivors.

        Pruned rows become dead placeholder individuals (infeasible with
        infinite violation, so no selection rule can ever adopt them)
        that keep the trial list index-aligned with the population for
        one-to-one selection.  They are charged to the ledger's
        ``pruned`` column, not its simulation counters.
        """
        self._generation += 1
        keep_mask, record = self._screener.screen(trial_xs, self._generation)
        self._screen_trace.append(record)
        n_pruned = int(np.count_nonzero(~keep_mask))
        if n_pruned:
            self.ledger.record_pruned(n_pruned)
        kept = iter(self._new_individuals(trial_xs[keep_mask]))
        trials = []
        for keep, x in zip(keep_mask, trial_xs):
            if keep:
                trials.append(next(kept))
            else:
                placeholder = Individual(x, False, float("inf"), None)
                placeholder.pruned = True
                trials.append(placeholder)
        return trials

    def _estimate_population(self, individuals: list[Individual]):
        """Estimate, then feed every *evaluated* candidate to the screener.

        The gen-0 population and each generation's surviving trials both
        pass through here, so the screener's training set is exactly what
        the run has already paid to learn: feasible candidates with their
        current yield estimate, infeasible ones as hard zeros.  Pruned
        placeholders were never evaluated and are skipped.
        """
        report = super()._estimate_population(individuals)
        for ind in individuals:
            if getattr(ind, "pruned", False):
                continue
            self._screener.observe(ind.x, ind.yield_value if ind.feasible else 0.0)
        return report

    def _select(
        self, population: list[Individual], trials: list[Individual]
    ) -> None:
        self._selection(population, trials)


def run_composed(
    problem,
    config: MOHECOConfig | None = None,
    *,
    compose: dict,
    screen_params: dict | None = None,
    ledger=None,
    rng=None,
    callbacks=None,
    engine=None,
    cache=None,
) -> MOHECOResult:
    """Run one composed optimization (the imperative entry point)."""
    return ComposedMOHECO(
        problem,
        config,
        compose=compose,
        screen_params=screen_params,
        ledger=ledger,
        rng=rng,
        callbacks=callbacks,
        engine=engine,
        cache=cache,
    ).run()


def register_composed_method(
    name: str, compose: dict, description: str, *, overwrite: bool = False
):
    """Turn a part config into a registered method (the ~10-line method).

    The produced runner carries the standard method-registry extras:

    * ``validate_overrides`` — builds the backbone config *and*
      instantiates the screener with the run's ``screen_params``, so bad
      knobs fail at submission time as structured ``SpecError``s;
    * ``description`` — the one-liner ``repro list methods`` prints;
    * ``compose_config`` — the config itself, for introspection and the
      CLI's composed-config summary.
    """
    compose = _normalize_compose(compose)
    build = _backbone_builder(compose["backbone"])
    # Fail at registration time (not first run) if a part name is unknown
    # or its static params are bad.
    make_screener(compose["screener"], None, rng=0)
    make_proposer(compose["proposer"], compose.get("proposer_params"))
    get_selection(compose["selection"])

    def runner(
        problem,
        *,
        rng=None,
        ledger=None,
        callbacks=None,
        engine=None,
        cache=None,
        screen_params=None,
        **overrides,
    ):
        return run_composed(
            problem,
            build(overrides),
            compose=compose,
            screen_params=screen_params,
            ledger=ledger,
            rng=rng,
            callbacks=callbacks,
            engine=engine,
            cache=cache,
        )

    def validate_overrides(overrides: dict) -> None:
        overrides = dict(overrides)
        screen_params = overrides.pop("screen_params", None)
        _check_screen_params(screen_params)
        build(overrides)
        make_screener(compose["screener"], screen_params, rng=0)

    runner.validate_overrides = validate_overrides
    runner.description = str(description)
    runner.compose_config = compose
    register_method(name, runner, overwrite=overwrite)
    return runner


# -- the shipped composed methods ------------------------------------------
register_composed_method(
    "moheco_screened",
    {
        "screener": "surrogate",
        "proposer": "de",
        "selection": "one_to_one",
        "backbone": "moheco",
    },
    description=(
        "MOHECO with a BagNet-style online surrogate pruning the trial "
        "pool before simulation"
    ),
)

register_composed_method(
    "moheco_lineasy",
    {
        "screener": "none",
        "proposer": "line",
        "selection": "one_to_one",
        "backbone": "moheco",
    },
    description=(
        "MOHECO with LinEasyBO-style 1-D-subspace trial proposals feeding "
        "the memetic loop"
    ),
)

register_composed_method(
    "fixed_budget_screened",
    {
        "screener": "surrogate",
        "proposer": "de",
        "selection": "one_to_one",
        "backbone": "fixed_budget",
    },
    description=(
        "Fixed-budget Monte-Carlo baseline with the surrogate screen in "
        "front of the simulator"
    ),
)
