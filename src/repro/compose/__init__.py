"""Config-composed optimization methods (RDGEMO-style).

New methods are four-field configs — ``{screener, proposer, selection,
backbone}`` — whose parts resolve by name from the :data:`SCREENERS` /
:data:`PROPOSERS` / :data:`SELECTIONS` registries, so a new scenario in
``repro list methods`` is ~10 lines of config rather than a driver.

Importing this package registers the shipped composed methods
(``moheco_screened``, ``moheco_lineasy``, ``fixed_budget_screened``) and
the built-in parts.
"""

from repro.compose.parts import (
    PROPOSERS,
    SCREENERS,
    SELECTIONS,
    get_proposer,
    get_screener,
    get_selection,
    list_proposers,
    list_screeners,
    list_selections,
    make_proposer,
    make_screener,
    register_proposer,
    register_screener,
    register_selection,
)
from repro.compose.method import (
    BACKBONES,
    ComposedMOHECO,
    register_composed_method,
    run_composed,
)
from repro.compose.proposers import DEProposer, LineSubspaceProposer
from repro.compose.screeners import NullScreener, SurrogateScreener

__all__ = [
    "SCREENERS",
    "PROPOSERS",
    "SELECTIONS",
    "BACKBONES",
    "register_screener",
    "get_screener",
    "list_screeners",
    "register_proposer",
    "get_proposer",
    "list_proposers",
    "register_selection",
    "get_selection",
    "list_selections",
    "make_screener",
    "make_proposer",
    "ComposedMOHECO",
    "run_composed",
    "register_composed_method",
    "NullScreener",
    "SurrogateScreener",
    "DEProposer",
    "LineSubspaceProposer",
]
