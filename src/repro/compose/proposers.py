"""Built-in trial proposers.

A proposer replaces step 2 of the MOHECO loop: given the current
population and the index of its best member, produce one trial vector
per parent.  Proposers draw randomness from ``optimizer.rng`` — the same
in-parent stream the DE operators use — so swapping a proposer changes
*what* is proposed, never *where* the randomness comes from, and every
execution backend replays the identical trial sequence.
"""

from __future__ import annotations

import numpy as np

from repro.compose.parts import register_proposer

__all__ = ["DEProposer", "LineSubspaceProposer"]


@register_proposer("de")
class DEProposer:
    """The backbone's own DE operators (mutation + crossover + repair).

    The identity proposer: a composed method with ``proposer: "de"``
    proposes exactly what plain MOHECO would, drawing the same RNG
    sequence — which is what lets ``moheco_screened`` differ from
    ``moheco`` *only* in which trials reach the simulator.
    """

    def __init__(self, **params) -> None:
        if params:
            raise ValueError(
                f"the 'de' proposer takes no params, got {sorted(params)}"
            )

    def propose(self, optimizer, population, best_index: int) -> np.ndarray:
        return optimizer.de.propose(
            np.array([ind.x for ind in population]), best_index, optimizer.rng
        )


@register_proposer("line")
class LineSubspaceProposer:
    """1-D-subspace proposals, LinEasyBO-style (arxiv 2109.00617).

    Each trial is the population best with a *single* coordinate moved by
    a DE-style differential: high-dimensional sizing problems improve
    mostly along a few axes at a time, and one-dimensional moves keep the
    trial inside the region the incumbent has already de-risked — the
    memetic local search then polishes along the remaining axes.

    Parameters
    ----------
    f:
        Differential weight for the 1-D move; ``None`` inherits the
        backbone config's ``de_f``.
    """

    def __init__(self, *, f: float | None = None, **params) -> None:
        if params:
            raise ValueError(
                f"the 'line' proposer takes only 'f', got {sorted(params)}"
            )
        if f is not None and not 0.0 < float(f) <= 2.0:
            raise ValueError(f"f must be in (0, 2], got {f}")
        self.f = None if f is None else float(f)

    def propose(self, optimizer, population, best_index: int) -> np.ndarray:
        rng = optimizer.rng
        xs = np.array([ind.x for ind in population])
        n, d = xs.shape
        f = optimizer.de.f if self.f is None else self.f
        best = xs[best_index]
        trials = np.tile(best, (n, 1))
        axes = rng.integers(0, d, size=n)
        for i in range(n):
            candidates = [j for j in range(n) if j != i]
            r1, r2 = rng.choice(candidates, size=2, replace=False)
            j = int(axes[i])
            trials[i, j] = best[j] + f * (xs[r1, j] - xs[r2, j])
        return optimizer.de.repair(trials, rng)
