"""The part registries composed methods are assembled from.

A composed method (:mod:`repro.compose.method`) is a four-field config::

    {"screener": ..., "proposer": ..., "selection": ..., "backbone": ...}

whose parts are resolved *by name* through the registries owned here —
the RDGEMO pattern: new algorithms are data, not drivers.

* :data:`SCREENERS` — candidate-pool filters that run *before* the
  feasibility check, so a pruned trial charges zero simulations.  A
  screener class is instantiated per run with the method's
  ``screen_params`` plus a private ``rng`` stream, and must implement
  ``observe(x, y)`` (labelled training data as estimation completes) and
  ``screen(xs, generation) -> (keep_mask, record)`` where ``record`` is
  the JSON-compatible entry appended to ``MOHECOResult.screen_trace``.
* :data:`PROPOSERS` — trial-vector generators replacing MOHECO's step 2.
  Instantiated per run with the config's static ``proposer_params``; must
  implement ``propose(optimizer, population, best_index) -> (n, d)``.
* :data:`SELECTIONS` — step-8 survivor rules.  Registered as plain
  functions ``select(population, trials) -> None`` mutating the
  population in place.

All three share :class:`~repro.registry.Registry` semantics
(case-insensitive names, duplicate errors, unknown-name errors listing
what is registered), and third-party parts plug in through the
``register_*`` helpers re-exported from :mod:`repro.api`.
"""

from __future__ import annotations

from repro.registry import Registry

__all__ = [
    "SCREENERS",
    "PROPOSERS",
    "SELECTIONS",
    "register_screener",
    "get_screener",
    "list_screeners",
    "register_proposer",
    "get_proposer",
    "list_proposers",
    "register_selection",
    "get_selection",
    "list_selections",
    "make_screener",
    "make_proposer",
]

#: Name -> screener class (see module docstring for the part protocol).
SCREENERS: Registry = Registry("screener")
#: Name -> proposer class.
PROPOSERS: Registry = Registry("proposer")
#: Name -> selection function.
SELECTIONS: Registry = Registry("selection")


def register_screener(name: str, screener_cls=None, *, overwrite: bool = False):
    """Register a candidate-pool screener class (usable as a decorator)."""
    return SCREENERS.register(name, screener_cls, overwrite=overwrite)


def get_screener(name: str):
    """The screener class registered under ``name``."""
    return SCREENERS.get(name)


def list_screeners() -> list[str]:
    """Sorted names of the registered screeners."""
    return SCREENERS.names()


def register_proposer(name: str, proposer_cls=None, *, overwrite: bool = False):
    """Register a trial-proposer class (usable as a decorator)."""
    return PROPOSERS.register(name, proposer_cls, overwrite=overwrite)


def get_proposer(name: str):
    """The proposer class registered under ``name``."""
    return PROPOSERS.get(name)


def list_proposers() -> list[str]:
    """Sorted names of the registered proposers."""
    return PROPOSERS.names()


def register_selection(name: str, select_fn=None, *, overwrite: bool = False):
    """Register a step-8 selection function (usable as a decorator)."""
    return SELECTIONS.register(name, select_fn, overwrite=overwrite)


def get_selection(name: str):
    """The selection function registered under ``name``."""
    return SELECTIONS.get(name)


def list_selections() -> list[str]:
    """Sorted names of the registered selection rules."""
    return SELECTIONS.names()


def make_screener(name: str, params: dict | None = None, *, rng=None):
    """Instantiate the screener ``name`` with per-run ``screen_params``.

    The screener's constructor validates its knobs — unknown or
    out-of-range ``screen_params`` raise ``ValueError`` here, which spec
    validation surfaces as a structured
    :class:`~repro.api.errors.SpecError` at submission time.
    """
    return SCREENERS.create(name, **(params or {}), rng=rng)


def make_proposer(name: str, params: dict | None = None):
    """Instantiate the proposer ``name`` with its static config params."""
    return PROPOSERS.create(name, **(params or {}))
