"""Built-in candidate-pool screeners.

A screener sits between trial proposal (step 2) and the feasibility gate
(step 3) of the MOHECO loop: it sees the raw trial matrix *before any
simulation is charged* and decides which rows are worth simulating.
Pruned rows never reach the feasibility check, so they cost zero
simulations — the ledger's ``pruned`` column records them instead.

Determinism contract: a screener's decisions must depend only on the
run's seed and the (engine-invariant) estimation results — never on
wall-clock, engine choice, worker count or cache state — because every
decision lands on ``MOHECOResult.screen_trace``, which is part of the
result *identity*.  The :class:`SurrogateScreener` satisfies this by
drawing all of its randomness from a private stream spawned from the
optimizer RNG at construction, refitting on a data-driven cadence, and
breaking score ties by stable index order.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compose.parts import register_screener
from repro.rng import ensure_rng, spawn
from repro.surrogate.rsb import ResponseSurfaceYieldModel

__all__ = ["NullScreener", "SurrogateScreener"]


@register_screener("none")
class NullScreener:
    """Keep every trial; record a trace entry so composed runs always
    carry a non-``None`` ``screen_trace`` regardless of their screener.

    Rejects *any* ``screen_params`` — a knob aimed at a method without a
    screening stage is a config mistake worth failing loudly at
    submission time.
    """

    def __init__(self, *, rng=None, **params) -> None:
        if params:
            raise ValueError(
                f"the 'none' screener takes no screen_params, got "
                f"{sorted(params)}"
            )

    def observe(self, x: np.ndarray, y: float) -> None:
        """No training data to accumulate."""

    def screen(self, xs: np.ndarray, generation: int):
        """Keep-all mask plus the uniform trace record."""
        n = len(xs)
        record = {
            "generation": int(generation),
            "mode": "none",
            "refit": False,
            "train_rows": 0,
            "keep": list(range(n)),
            "pruned": [],
        }
        return np.ones(n, dtype=bool), record


@register_screener("surrogate")
class SurrogateScreener:
    """Online MLP/RSB yield discriminator pruning the trial pool.

    BagNet-style (PAPERS.md, arxiv 1907.10515): a cheap learned model is
    trained on every candidate the run has already paid to evaluate, and
    each generation's trial pool is ranked by predicted yield before any
    simulator time is spent.  Only the top ``keep_fraction`` survive to
    the feasibility gate.

    The keep-fraction is *calibrated by rank quantile*: the cut is taken
    on the score ordering, not on an absolute score threshold, so a
    systematically optimistic or pessimistic surrogate still prunes
    exactly the configured fraction — miscalibration of the regressor's
    scale cannot silently disable (or over-tighten) the screen.

    Parameters (the ``screen_params`` knobs)
    ----------------------------------------
    keep_fraction:
        Fraction of each trial pool that survives, in (0, 1].
    min_train:
        Evaluated-candidate count below which the screener falls back to
        keep-all (mode ``"fallback"`` in the trace) — an untrained
        discriminator must not veto exploration.
    min_keep:
        Hard floor on survivors per generation (>= 1), so a tiny pool or
        an aggressive fraction can never starve selection.
    refit_every:
        Refit cadence in screening calls (1 = every generation).
    n_hidden / n_restarts / max_iterations:
        The :class:`~repro.surrogate.rsb.ResponseSurfaceYieldModel`
        training knobs; defaults are sized for a per-generation refit.
    max_train:
        Cap on training rows (most recent win), bounding refit cost on
        long runs.
    """

    def __init__(
        self,
        *,
        keep_fraction: float = 0.5,
        min_train: int = 30,
        min_keep: int = 2,
        refit_every: int = 1,
        n_hidden: int = 8,
        n_restarts: int = 1,
        max_iterations: int = 40,
        max_train: int = 512,
        rng=None,
        **params,
    ) -> None:
        if params:
            raise ValueError(
                f"unknown screen_params {sorted(params)}; valid knobs: "
                "keep_fraction, min_train, min_keep, refit_every, n_hidden, "
                "n_restarts, max_iterations, max_train"
            )
        keep_fraction = float(keep_fraction)
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
        min_train = int(min_train)
        if min_train < 2:
            raise ValueError(f"min_train must be >= 2, got {min_train}")
        min_keep = int(min_keep)
        if min_keep < 1:
            raise ValueError(f"min_keep must be >= 1, got {min_keep}")
        refit_every = int(refit_every)
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        for name, value in (
            ("n_hidden", int(n_hidden)),
            ("n_restarts", int(n_restarts)),
            ("max_iterations", int(max_iterations)),
            ("max_train", int(max_train)),
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        self.keep_fraction = keep_fraction
        self.min_train = min_train
        self.min_keep = min_keep
        self.refit_every = refit_every
        self.n_hidden = int(n_hidden)
        self.n_restarts = int(n_restarts)
        self.max_iterations = int(max_iterations)
        self.max_train = int(max_train)
        self.rng = ensure_rng(rng)
        self._train_x: list[np.ndarray] = []
        self._train_y: list[float] = []
        self._model: ResponseSurfaceYieldModel | None = None
        self._screens = 0

    # -- training data ------------------------------------------------------
    def observe(self, x: np.ndarray, y: float) -> None:
        """Record one evaluated candidate (infeasible ones arrive as 0.0)."""
        self._train_x.append(np.asarray(x, dtype=float).copy())
        self._train_y.append(float(y))

    @property
    def train_rows(self) -> int:
        """Evaluated candidates accumulated so far."""
        return len(self._train_y)

    # -- screening ----------------------------------------------------------
    def _refit(self) -> None:
        x = np.array(self._train_x[-self.max_train :])
        y = np.array(self._train_y[-self.max_train :])
        # A fresh model per refit with its own spawned stream: the RNG
        # consumption is a deterministic function of the refit count, so
        # score sequences replay bit-identically across engines and caches.
        self._model = ResponseSurfaceYieldModel(
            n_hidden=self.n_hidden,
            n_restarts=self.n_restarts,
            max_iterations=self.max_iterations,
            rng=spawn(self.rng),
        )
        self._model.fit(x, y)

    def screen(self, xs: np.ndarray, generation: int):
        """Rank the pool and keep the calibrated top fraction.

        Returns ``(keep_mask, record)`` — the boolean survivor mask over
        ``xs`` rows and the JSON-compatible ``screen_trace`` entry.
        """
        xs = np.atleast_2d(np.asarray(xs, dtype=float))
        n = len(xs)
        targets = self._train_y[-self.max_train :]
        # Two fallback conditions, both keep-all: too few evaluated
        # candidates, or no *signal* in them (a discriminator trained on a
        # constant target — e.g. an all-infeasible population, every yield
        # 0 — would rank the pool arbitrarily and veto the very
        # exploration that finds the first feasible design).
        if self.train_rows < self.min_train or max(targets) <= min(targets):
            record = {
                "generation": int(generation),
                "mode": "fallback",
                "refit": False,
                "train_rows": self.train_rows,
                "keep": list(range(n)),
                "pruned": [],
            }
            return np.ones(n, dtype=bool), record

        refit = self._model is None or self._screens % self.refit_every == 0
        if refit:
            self._refit()
        self._screens += 1

        scores = np.nan_to_num(self._model.predict(xs), nan=-1.0)
        n_keep = min(n, max(self.min_keep, math.ceil(self.keep_fraction * n)))
        # Stable sort: equal scores keep their index order, so the cut is
        # deterministic regardless of float-tie patterns.
        order = np.argsort(-scores, kind="stable")
        keep_indices = sorted(int(i) for i in order[:n_keep])
        mask = np.zeros(n, dtype=bool)
        mask[keep_indices] = True
        record = {
            "generation": int(generation),
            "mode": "screened",
            "refit": bool(refit),
            "train_rows": self.train_rows,
            "keep": keep_indices,
            "pruned": [int(i) for i in np.flatnonzero(~mask)],
            "scores": [round(float(s), 9) for s in scores],
        }
        return mask, record
