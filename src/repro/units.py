"""Unit helpers used across the library.

Internally everything is SI (volts, amperes, farads, hertz, watts, metres,
radians).  The helpers here convert between SI and the "designer" units that
analog specifications are quoted in (dB, MHz, degrees, mW, um).

The functions are intentionally tiny and NumPy-friendly: every function
accepts scalars or arrays and returns the same shape.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "db",
    "db_to_ratio",
    "ratio_to_db",
    "deg",
    "rad",
    "MEGA",
    "GIGA",
    "KILO",
    "MILLI",
    "MICRO",
    "NANO",
    "PICO",
    "FEMTO",
]

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15


def ratio_to_db(ratio):
    """Convert a voltage gain ratio to decibels (20*log10).

    Values at or below zero map to ``-inf`` rather than raising, which keeps
    vectorised yield evaluation branch-free (a non-positive gain simply fails
    any dB spec).
    """
    ratio = np.asarray(ratio, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        out = 20.0 * np.log10(np.where(ratio > 0.0, ratio, np.nan))
    out = np.where(np.isnan(out), -np.inf, out)
    if out.ndim == 0:
        return float(out)
    return out


def db_to_ratio(value_db):
    """Convert decibels to a voltage gain ratio (inverse of ratio_to_db)."""
    value_db = np.asarray(value_db, dtype=float)
    out = np.power(10.0, value_db / 20.0)
    if out.ndim == 0:
        return float(out)
    return out


# ``db`` reads naturally at call sites: db(gain_ratio) -> dB value.
db = ratio_to_db


def deg(radians):
    """Convert radians to degrees."""
    out = np.degrees(np.asarray(radians, dtype=float))
    if out.ndim == 0:
        return float(out)
    return out


def rad(degrees):
    """Convert degrees to radians."""
    out = np.radians(np.asarray(degrees, dtype=float))
    if out.ndim == 0:
        return float(out)
    return out
